package sunstone

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sunstone/internal/anytime"
	"sunstone/internal/faults"
)

// TestClassifyFailure pins the cause taxonomy: injected faults win over the
// panic that may carry them, contained panics beat the generic bucket,
// deadlines are recognized structurally (errors.Is, not string matching), and
// the sibling-cancel flag only matters when nothing more specific applies.
func TestClassifyFailure(t *testing.T) {
	inj := &faults.InjectedError{Site: faults.SiteCompile, Kind: faults.Error, Seq: 1}
	cases := []struct {
		name    string
		err     error
		sibling bool
		want    FailureCause
	}{
		{"injected direct", inj, false, CauseInjected},
		{"injected wrapped", fmt.Errorf("compile: %w", inj), false, CauseInjected},
		{"injected inside panic", &anytime.PanicError{Op: "evaluate", Value: fmt.Errorf("die: %w", inj)}, false, CauseInjected},
		{"plain panic", &anytime.PanicError{Op: "evaluate", Value: "index out of range"}, false, CausePanic},
		{"deadline", fmt.Errorf("search stopped: %w", context.DeadlineExceeded), false, CauseDeadline},
		{"sibling cancel", errors.New("no valid mapping completed"), true, CauseSiblingCancel},
		{"plain search failure", errors.New("no valid mapping completed"), false, CauseSearch},
		// An injected fault on a canceled sibling is still injected — the
		// specific cause wins over the circumstance.
		{"injected on canceled sibling", inj, true, CauseInjected},
	}
	for _, tc := range cases {
		if got := classifyFailure(tc.err, tc.sibling); got != tc.want {
			t.Errorf("%s: classifyFailure = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCauseOf covers the public accessor: nil has no cause, a LayerError's
// recorded cause is authoritative even deep in a joined chain, and bare
// errors fall back to direct classification.
func TestCauseOf(t *testing.T) {
	if got := CauseOf(nil); got != "" {
		t.Errorf("CauseOf(nil) = %q", got)
	}
	le := &LayerError{Layer: "conv1", Cause: CauseDeadline, Err: context.DeadlineExceeded}
	if got := CauseOf(fmt.Errorf("schedule: %w", le)); got != CauseDeadline {
		t.Errorf("wrapped LayerError: CauseOf = %q, want %q", got, CauseDeadline)
	}
	if got := CauseOf(errors.Join(errors.New("other"), le)); got != CauseDeadline {
		t.Errorf("joined LayerError: CauseOf = %q, want %q", got, CauseDeadline)
	}
	inj := &faults.InjectedError{Site: faults.SiteExpand, Kind: faults.Panic, Seq: 3}
	if got := CauseOf(fmt.Errorf("bare: %w", inj)); got != CauseInjected {
		t.Errorf("bare injected: CauseOf = %q, want %q", got, CauseInjected)
	}
	if got := CauseOf(errors.New("anything else")); got != CauseSearch {
		t.Errorf("bare error: CauseOf = %q, want %q", got, CauseSearch)
	}
}

// TestLayerErrorRendering pins the log format ("<layer>: [<cause>] <err>",
// keeping the layer prefix older tooling greps for) and Unwrap.
func TestLayerErrorRendering(t *testing.T) {
	base := errors.New("boom")
	le := &LayerError{Layer: "conv2_x", Cause: CausePanic, Err: base}
	if got, want := le.Error(), "conv2_x: [panic] boom"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if !errors.Is(le, base) {
		t.Error("LayerError must unwrap to the underlying failure")
	}
}

package sunstone

import (
	"errors"

	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/serde"
	"sunstone/internal/tensor"
)

// EncodeWorkload serializes a workload description to indented JSON.
func EncodeWorkload(w *Workload) ([]byte, error) { return serde.EncodeWorkload(w) }

// DecodeWorkload parses and validates a JSON workload description.
func DecodeWorkload(data []byte) (*Workload, error) { return serde.DecodeWorkload(data) }

// EncodeArch serializes an architecture description to indented JSON.
func EncodeArch(a *Arch) ([]byte, error) { return serde.EncodeArch(a) }

// DecodeArch parses and validates a JSON architecture description.
func DecodeArch(data []byte) (*Arch, error) { return serde.DecodeArch(data) }

// EncodeMapping serializes a mapping's level assignments to indented JSON.
func EncodeMapping(m *Mapping) ([]byte, error) { return serde.EncodeMapping(m) }

// DecodeMapping parses level assignments, binds them to w and a, and
// validates the result.
func DecodeMapping(data []byte, w *Workload, a *Arch) (*Mapping, error) {
	return serde.DecodeMapping(data, w, a)
}

// EncodeNetworkSchedule serializes a network schedule's summary — per-layer
// totals, failure messages, and for fused schedules the chosen group
// structure — as indented JSON stamped with the current format. Mappings are
// not embedded; encode each layer's Result.Mapping individually with
// EncodeMapping when the full mapping matters.
func EncodeNetworkSchedule(s *NetworkSchedule) ([]byte, error) {
	out := serde.NetworkScheduleJSON{
		Network:       s.Network,
		Fused:         s.Fused,
		TotalEnergyPJ: s.TotalEnergyPJ,
		TotalCycles:   s.TotalCycles,
		EDP:           s.EDP,
		UnfusedEDP:    s.UnfusedEDP,
		Failed:        s.Failed,
	}
	for i := range s.Layers {
		l := &s.Layers[i]
		lj := serde.NetworkLayerJSON{Layer: l.Layer, Repeats: l.Repeats}
		if l.Err != nil {
			lj.Error = l.Err.Error()
		} else {
			lj.EnergyPJ = l.Result.Report.EnergyPJ
			lj.Cycles = l.Result.Report.Cycles
			lj.EDP = l.Result.Report.EDP
		}
		out.Layers = append(out.Layers, lj)
	}
	for _, g := range s.Groups {
		out.Groups = append(out.Groups, serde.NetworkGroupJSON{
			Layers: g.Layers, Start: g.Start, End: g.End,
			PinLevel: g.PinLevel, EnergyPJ: g.EnergyPJ, Cycles: g.Cycles,
		})
	}
	return serde.EncodeNetworkSchedule(&out)
}

// DecodeNetworkSchedule parses a network-schedule summary: a stamped
// sunstone/v1 object (fused group structure included) or the legacy
// headerless layer-per-entry array, which decodes as an unfused schedule.
// Decoded layers carry only the recorded totals in their Report — the
// mappings themselves are not round-tripped — and failed layers come back
// with their recorded error message.
func DecodeNetworkSchedule(data []byte) (*NetworkSchedule, error) {
	in, err := serde.DecodeNetworkSchedule(data)
	if err != nil {
		return nil, err
	}
	s := &NetworkSchedule{
		Network:       in.Network,
		Fused:         in.Fused,
		TotalEnergyPJ: in.TotalEnergyPJ,
		TotalCycles:   in.TotalCycles,
		EDP:           in.EDP,
		UnfusedEDP:    in.UnfusedEDP,
		Failed:        in.Failed,
	}
	for _, lj := range in.Layers {
		l := LayerSchedule{Layer: lj.Layer, Repeats: lj.Repeats}
		if lj.Error != "" {
			l.Err = errors.New(lj.Error)
		} else {
			l.Result.Report.EnergyPJ = lj.EnergyPJ
			l.Result.Report.Cycles = lj.Cycles
			l.Result.Report.EDP = lj.EDP
		}
		s.Layers = append(s.Layers, l)
	}
	for _, gj := range in.Groups {
		s.Groups = append(s.Groups, GroupSchedule{
			Layers: gj.Layers, Start: gj.Start, End: gj.End,
			PinLevel: gj.PinLevel, EnergyPJ: gj.EnergyPJ, Cycles: gj.Cycles,
		})
	}
	return s, nil
}

// Interface-compliance and alias sanity (compile-time).
var (
	_ *tensor.Workload = (*Workload)(nil)
	_ *arch.Arch       = (*Arch)(nil)
	_ *mapping.Mapping = (*Mapping)(nil)
)

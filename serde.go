package sunstone

import (
	"sunstone/internal/arch"
	"sunstone/internal/mapping"
	"sunstone/internal/serde"
	"sunstone/internal/tensor"
)

// EncodeWorkload serializes a workload description to indented JSON.
func EncodeWorkload(w *Workload) ([]byte, error) { return serde.EncodeWorkload(w) }

// DecodeWorkload parses and validates a JSON workload description.
func DecodeWorkload(data []byte) (*Workload, error) { return serde.DecodeWorkload(data) }

// EncodeArch serializes an architecture description to indented JSON.
func EncodeArch(a *Arch) ([]byte, error) { return serde.EncodeArch(a) }

// DecodeArch parses and validates a JSON architecture description.
func DecodeArch(data []byte) (*Arch, error) { return serde.DecodeArch(data) }

// EncodeMapping serializes a mapping's level assignments to indented JSON.
func EncodeMapping(m *Mapping) ([]byte, error) { return serde.EncodeMapping(m) }

// DecodeMapping parses level assignments, binds them to w and a, and
// validates the result.
func DecodeMapping(data []byte, w *Workload, a *Arch) (*Mapping, error) {
	return serde.DecodeMapping(data, w, a)
}

// Interface-compliance and alias sanity (compile-time).
var (
	_ *tensor.Workload = (*Workload)(nil)
	_ *arch.Arch       = (*Arch)(nil)
	_ *mapping.Mapping = (*Mapping)(nil)
)

module sunstone

go 1.23

GO ?= go

.PHONY: check vet build test race fuzz

# check is the full pre-commit gate: static analysis, build, the whole test
# suite, and the race detector over the concurrent search paths.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the goroutine-heavy paths — the core evaluation fan-out and
# its cancellation/panic-isolation tests, the soak corpus, Timeloop's search
# threads, and network scheduling — under the race detector. Scoped to the
# packages that spawn goroutines so the instrumented run stays fast.
race:
	$(GO) test -race ./internal/core/ ./internal/baselines/timeloop/ .

# fuzz runs each fuzz target briefly (parser and JSON decoders).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tensor/
	$(GO) test -fuzz=FuzzDecodeWorkload -fuzztime=10s ./internal/serde/

GO ?= go

.PHONY: check vet build test race fuzz bench bench-smoke trace-smoke

# check is the full pre-commit gate: static analysis, build, the whole test
# suite, the race detector over the concurrent search paths, and a telemetry
# smoke test of the trace exporter.
check: vet build test race trace-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the goroutine-heavy paths — the core evaluation fan-out and
# its cancellation/panic-isolation tests, the soak corpus, Timeloop's search
# threads, and network scheduling — under the race detector. Scoped to the
# packages that spawn goroutines so the instrumented run stays fast.
race:
	$(GO) test -race ./internal/core/ ./internal/cost/ ./internal/baselines/timeloop/ .

# bench reruns the search/evaluation benchmarks and refreshes BENCH_PR2.json,
# the machine-readable before/after trajectory for the fast-path work: the
# committed benchdata/pr2_before.txt baseline stays fixed, the after side is
# regenerated on the current tree.
bench:
	$(GO) test -run xxx -bench 'BenchmarkOptimize|BenchmarkEvaluate' -benchmem -count 3 . | tee benchdata/pr2_after.txt
	$(GO) run ./cmd/benchjson -before benchdata/pr2_before.txt -after benchdata/pr2_after.txt -out BENCH_PR2.json

# bench-smoke compiles and runs every benchmark for a single iteration — a
# fast regression guard that the harness itself still works.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

# trace-smoke runs a small conv search with -trace and checks the exported
# file is well-formed Chrome trace-event JSON (loadable in chrome://tracing /
# Perfetto): a traceEvents array with at least the optimize, per-level,
# evaluate and polish spans.
trace-smoke:
	$(GO) run ./cmd/sunstone -workload conv -dims N=1,K=16,C=16,P=14,Q=14,R=3,S=3 \
		-arch conventional -trace /tmp/sunstone-trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/sunstone-trace-smoke.json \
		optimize level orderings enumerate evaluate polish

# fuzz runs each fuzz target briefly (parser and JSON decoders).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tensor/
	$(GO) test -fuzz=FuzzDecodeWorkload -fuzztime=10s ./internal/serde/

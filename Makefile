GO ?= go

# bench knobs: override to regenerate a different PR's trajectory, e.g.
#   make bench BENCH_PATTERN='BenchmarkOptimize' BENCH_OUT=/tmp/b.json
BENCH_PATTERN ?= BenchmarkOptimize|BenchmarkEvaluate|BenchmarkEngineReuse|BenchmarkAnalyticalLayer|BenchmarkNetworkFused
BENCH_BEFORE ?= benchdata/pr9_before.txt
BENCH_AFTER ?= benchdata/pr9_after.txt
BENCH_OUT ?= BENCH_PR9.json

.PHONY: check vet fmt-check guard build test race fuzz fuzz-smoke bench bench-smoke trace-smoke chaos-smoke server-smoke crash-smoke parallel-smoke seed-smoke fuse-smoke

# check is the full pre-commit gate: static analysis, formatting, the
# unified-stepper guard, build, the whole test suite, the race detector over
# the concurrent search paths, a thread-count parity smoke of the parallel
# beam expansion, an EDP-parity smoke of the analytical seeding layer, a
# fused-vs-unfused smoke of the fusion-aware network scheduler, a telemetry
# smoke test of the trace exporter, a seeded chaos smoke of the resilient
# scheduling path, an end-to-end smoke of the sunstoned scheduler service
# (submit, poll, drain under SIGTERM), and a kill-mid-search crash-recovery
# smoke of the write-ahead journal.
check: vet fmt-check guard build test race parallel-smoke seed-smoke fuse-smoke trace-smoke chaos-smoke server-smoke crash-smoke

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# guard enforces that the direction-specific entry points stay merged: no
# code outside the unified level sequencer may call bottomUp/topDown.
guard:
	./scripts/guard-stepper.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the goroutine-heavy paths — the core evaluation fan-out and
# its cancellation/panic-isolation tests, the resilient retry/fallback loop
# and the concurrent same-key compile-failure tests, the fault-injection
# registry, the soak corpus, Timeloop's search threads, network scheduling
# (including the chaos guarantee in short mode), and the shared-Engine
# concurrency test in the root package — under the race detector. Scoped to
# the packages that spawn goroutines so the instrumented run stays fast.
race:
	$(GO) test -race ./internal/core/ ./internal/cost/ ./internal/faults/ ./internal/server/ ./internal/journal/ ./internal/baselines/timeloop/ ./internal/baselines/innermost/
	$(GO) test -race -short .

# parallel-smoke pins the determinism contract of intra-search parallelism
# on the tiny preset: the search result must be bit-identical at 1 and 8
# threads, under the race detector, at both GOMAXPROCS=1 and 4 (-cpu), so
# goroutine interleaving differences cannot change a mapping.
parallel-smoke:
	$(GO) test -race -run 'TestParallelParity/tiny' -cpu 1,4 -count 1 ./internal/core/

# seed-smoke pins the analytical layer's safety contract on small presets:
# with seeding + bound pruning on (the default) the search must land on an
# equal-or-better EDP than the disabled search while evaluating at least 30%
# fewer candidates, and the disabled path must stay bit-identical run to run.
seed-smoke:
	$(GO) test -run 'TestAnalyticalSeedEDPParity|TestAnalyticalOnEqualOrBetter|TestAnalyticalOffDeterministic' -count 1 ./internal/core/

# fuse-smoke pins the fusion-aware network scheduler's acceptance contract:
# the fused schedule never scores worse EDP than the per-layer baseline
# solved in the same run, the chosen groups tile the chain, and turning
# fusion off (max group 1) is bit-identical to the per-layer scheduler —
# plus the strict-improvement case on the transformer chain in
# internal/core.
fuse-smoke:
	$(GO) test -run 'TestFuseSmoke' -count 1 .
	$(GO) test -run 'TestFusedBeatsUnfused|TestFusedMaxGroupOneIsUnfused' -count 1 ./internal/core/

# bench reruns the search/evaluation/Engine-reuse benchmarks and refreshes
# $(BENCH_OUT), the machine-readable before/after trajectory: the committed
# $(BENCH_BEFORE) baseline stays fixed, the after side is regenerated on the
# current tree. Benchmarks absent from the before file (e.g. the Engine-reuse
# pair, new in this PR) still appear in the after column.
bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 3 . | tee $(BENCH_AFTER)
	$(GO) run ./cmd/benchjson -before $(BENCH_BEFORE) -after $(BENCH_AFTER) -out $(BENCH_OUT)

# bench-smoke compiles and runs every benchmark for a single iteration — a
# fast regression guard that the harness itself still works.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

# trace-smoke runs a small conv search with -trace and checks the exported
# file is well-formed Chrome trace-event JSON (loadable in chrome://tracing /
# Perfetto): a traceEvents array with at least the optimize, per-level,
# evaluate and polish spans.
trace-smoke:
	$(GO) run ./cmd/sunstone -workload conv -dims N=1,K=16,C=16,P=14,Q=14,R=3,S=3 \
		-arch conventional -trace /tmp/sunstone-trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/sunstone-trace-smoke.json \
		optimize level orderings enumerate evaluate polish

# fuzz runs each fuzz target briefly (parser, JSON decoders, and the
# write-ahead journal's segment replay).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tensor/
	$(GO) test -fuzz=FuzzDecodeWorkload -fuzztime=10s ./internal/serde/
	$(GO) test -fuzz=FuzzDecodeArch -fuzztime=10s ./internal/serde/
	$(GO) test -fuzz=FuzzDecodeMapping -fuzztime=10s ./internal/serde/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/journal/

# fuzz-smoke runs the serde and journal fuzz targets for a handful of
# seconds each — a CI-speed guard that the corpora still pass and the
# harness still builds.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeArch -fuzztime=3s ./internal/serde/
	$(GO) test -fuzz=FuzzDecodeMapping -fuzztime=3s ./internal/serde/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=3s ./internal/journal/

# chaos-smoke runs the seeded chaos guarantee (30% uniform fault injection
# over resilient network schedules; reduced run count via -short) plus the
# determinism-by-seed check — the graceful-degradation acceptance property.
chaos-smoke:
	$(GO) test -short -run 'TestChaos' -count 1 .

# server-smoke builds the real sunstoned binary, runs it on an ephemeral
# port, submits a job and polls it to completion, then SIGTERMs the daemon
# with a long-budget job mid-search and asserts the drained job's SSE
# terminal event carries a best-so-far mapping and the process exits 0.
server-smoke:
	$(GO) test -run 'TestServerSmoke' -count 1 ./cmd/sunstoned/

# crash-smoke is the durability acceptance gate against the real binary:
# run sunstoned with -data-dir, submit a long job, SIGKILL the process
# after a best-so-far checkpoint reaches the journal, restart it on the
# same directory, and assert the job is re-admitted, finishes done with an
# audit-passing mapping no worse than its checkpoint, and survives a third
# restart as a stable terminal record.
crash-smoke:
	$(GO) test -run 'TestCrashRecoverySmoke' -count 1 ./cmd/sunstoned/

package sunstone

import (
	"context"

	"sunstone/internal/baselines"
	"sunstone/internal/baselines/registry"
	"sunstone/internal/core"
)

// Engine is a long-lived, goroutine-safe optimizer front end that caches the
// expensive per-(workload, architecture, cost model) compilation artifacts —
// the pruned ordering trie, the factor/divisor ladder tables, the fit-check
// capacity skeleton, and the fast-path cost session with its search-wide
// evaluation memo — across calls. The first Optimize for a problem shape
// compiles it; every later call on the same shape (same Engine) reuses the
// compiled artifacts and the warmed evaluation cache, which is the common
// case when scheduling a network whose layers repeat or when sweeping options
// over one layer.
//
// The zero-cost alternative remains: the package-level Optimize builds the
// same artifacts per call. An Engine never changes *what* is found — results
// are identical to the per-call path, only faster when shapes repeat.
//
// Engines are safe for concurrent use; calls from many goroutines share one
// bounded (LRU-evicted) compilation cache. Searches with Options.Model.Probe
// set bypass the cache (a probe is per-call observation state).
type Engine struct {
	core *core.Engine
}

// NewEngine returns an Engine with the default compilation-cache bound
// (256 problem shapes, evicted least-recently-used).
func NewEngine() *Engine { return &Engine{core: core.NewEngine(0)} }

// NewEngineSize returns an Engine whose compilation cache holds at most
// maxEntries problem shapes; maxEntries <= 0 selects the default bound.
func NewEngineSize(maxEntries int) *Engine { return &Engine{core: core.NewEngine(maxEntries)} }

// EngineStats is a snapshot of an Engine's compilation-cache activity.
type EngineStats = core.EngineStats

// Stats returns a snapshot of the compilation cache: compiles (misses),
// hits, LRU evictions, and the current entry count.
func (e *Engine) Stats() EngineStats { return e.core.Stats() }

// Solve runs the Sunstone optimizer on a Problem under ctx through the
// Engine's compilation cache, with the same anytime contract as the
// package-level SolveContext. This is the canonical Engine entry point;
// the cache key is derived from the Problem's content (workload, arch,
// cost model), never from pointer identity.
func (e *Engine) Solve(ctx context.Context, p Problem, opt Options) (Result, error) {
	return e.core.Solve(ctx, p, opt)
}

// Optimize runs the Sunstone optimizer through the Engine's compilation
// cache. It is OptimizeContext with a background context; Options.Timeout
// still bounds the wall-clock.
//
// Deprecated-style note: Engine.Solve with a Problem is the canonical entry
// point; this wrapper remains for positional-argument callers.
func (e *Engine) Optimize(w *Workload, a *Arch, opt Options) (Result, error) {
	return e.core.Optimize(w, a, opt)
}

// OptimizeContext runs the Sunstone optimizer under ctx through the Engine's
// compilation cache, with the same anytime contract as the package-level
// OptimizeContext.
//
// Deprecated-style note: Engine.Solve with a Problem is the canonical entry
// point; this wrapper remains for positional-argument callers.
func (e *Engine) OptimizeContext(ctx context.Context, w *Workload, a *Arch, opt Options) (Result, error) {
	return e.core.OptimizeContext(ctx, w, a, opt)
}

// Baselines returns the same ordered prior-art registry as the package-level
// Baselines, with every mapper that supports it wired to share the Engine's
// cached cost sessions (see BaselineMapper implementations' UseSessions), so
// a head-to-head comparison against an Engine-driven Sunstone run reuses one
// set of per-problem tables instead of rebuilding them per tool.
func (e *Engine) Baselines() []NamedBaseline {
	all := registry.All()
	out := make([]NamedBaseline, len(all))
	for i, ent := range all {
		m := ent.New()
		if s, ok := m.(interface {
			UseSessions(baselines.SessionSource)
		}); ok {
			s.UseSessions(e.core)
		}
		out[i] = NamedBaseline{Name: ent.Name, Mapper: m}
	}
	return out
}

package sunstone

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// LayerSchedule is one layer's outcome within a network schedule.
type LayerSchedule struct {
	Layer   string
	Result  Result
	Repeats int // identical layers mapped once, counted Repeats times
}

// NetworkSchedule aggregates a whole network's mapping results.
type NetworkSchedule struct {
	Network       string
	Layers        []LayerSchedule
	TotalEnergyPJ float64
	TotalCycles   float64
	// EDP is the network-level energy-delay product (total energy x total
	// cycles, layers executed back to back).
	EDP     float64
	Elapsed time.Duration
}

// ScheduleNetwork maps every layer of a network onto the architecture,
// optimizing layers concurrently (each layer's search is independent), and
// returns per-layer mappings plus network totals. Repeats lets callers
// weight shapes that occur multiple times (e.g. the four conv2_x blocks of
// ResNet-18); pass nil for one occurrence each.
func ScheduleNetwork(network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt Options) (NetworkSchedule, error) {
	if repeats != nil && len(repeats) != len(shapes) {
		return NetworkSchedule{}, fmt.Errorf("repeats has %d entries for %d shapes", len(repeats), len(shapes))
	}
	start := time.Now()
	out := NetworkSchedule{Network: network, Layers: make([]LayerSchedule, len(shapes))}
	errs := make([]error, len(shapes))

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range shapes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			w := shapes[i].Inference(batch)
			res, err := Optimize(w, a, opt)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", shapes[i].Name, err)
				return
			}
			rep := 1
			if repeats != nil {
				rep = repeats[i]
			}
			out.Layers[i] = LayerSchedule{Layer: shapes[i].Name, Result: res, Repeats: rep}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	for i := range out.Layers {
		l := &out.Layers[i]
		out.TotalEnergyPJ += l.Result.Report.EnergyPJ * float64(l.Repeats)
		out.TotalCycles += l.Result.Report.Cycles * float64(l.Repeats)
	}
	out.EDP = out.TotalEnergyPJ * out.TotalCycles
	out.Elapsed = time.Since(start)
	return out, nil
}

// ResNet18Repeats gives the occurrence count of each ResNet18Layers shape in
// the full 18-layer network (the per-shape tables list distinct shapes once).
func ResNet18Repeats() []int {
	return []int{
		1, // conv1
		4, // conv2_x
		1, // conv3_1
		1, // conv3_ds
		3, // conv3_x
		1, // conv4_1
		1, // conv4_ds
		3, // conv4_x
		1, // conv5_1
		1, // conv5_ds
		3, // conv5_x
	}
}

package sunstone

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/core"
	"sunstone/internal/network"
	"sunstone/internal/obs"
	"sunstone/internal/workloads"
)

// Fusion IR surface (internal/network): the typed Network of Layer nodes
// with explicit producer→consumer tensor Edges that both network schedulers
// consume. The legacy (network, shapes, repeats) entry points below are thin
// adapters that build this IR.
type (
	// Network is an ordered chain of layers with the edges along which
	// fusion is legal.
	Network = network.Network
	// Layer is one node of a Network: a workload plus its consecutive
	// occurrence count.
	Layer = network.Layer
	// Edge is one producer→consumer tensor handoff between chain neighbors.
	Edge = network.Edge
	// Position is one executed layer occurrence in chain order.
	Position = network.Position
	// FusionOptions configures the fused network scheduler on top of the
	// per-member search Options.
	FusionOptions = core.FusionOptions
)

// IR constructors.
var (
	// TransformerChain is the MHA-flavored GEMM→GEMM chain preset: the four
	// back-to-back projections of one transformer block, fully fusible.
	TransformerChain = network.TransformerChain
)

// FromConvShapes builds the conv-chain IR behind the legacy (network,
// shapes, repeats) signature; see internal/network for the edge-construction
// rules (channel chaining plus the pooling-geometry cut).
func FromConvShapes(name string, shapes []ConvShape, batch int, repeats []int) (*Network, error) {
	return network.FromConvShapes(name, shapes, batch, repeats)
}

// LayerSchedule is one layer's outcome within a network schedule.
type LayerSchedule struct {
	Layer   string
	Result  Result
	Repeats int // identical layers mapped once, counted Repeats times
	// Err is this layer's failure, if any (nil for a mapped layer). Failed
	// layers carry no mapping and are excluded from the network totals.
	Err error
}

// GroupSchedule is one fused segment of a fusion-aware network schedule: the
// contiguous chain positions [Start, End) whose intermediate tensors stayed
// resident on-chip at PinLevel. Singleton groups (End-Start == 1) are
// unfused layer occurrences with PinLevel -1.
type GroupSchedule struct {
	Layers     []string
	Start, End int
	PinLevel   int
	EnergyPJ   float64
	Cycles     float64
}

// NetworkSchedule aggregates a whole network's mapping results.
type NetworkSchedule struct {
	Network       string
	Layers        []LayerSchedule
	TotalEnergyPJ float64
	TotalCycles   float64
	// EDP is the network-level energy-delay product (total energy x total
	// cycles, layers executed back to back).
	EDP float64
	// Failed counts layers that returned an error; when it is non-zero the
	// totals cover only the layers that succeeded.
	Failed  int
	Elapsed time.Duration
	// Fused marks a schedule produced by the fusion-aware scheduler: Layers
	// then holds one entry per executed chain position (repeats expanded,
	// Repeats 1 each), Groups records the chosen fusion cut, and UnfusedEDP
	// the all-singleton baseline from the same run.
	Fused      bool
	Groups     []GroupSchedule
	UnfusedEDP float64
}

// NetworkOptions configures ScheduleNetworkContext: the per-layer optimizer
// Options plus network-level policy.
type NetworkOptions struct {
	Options
	// ContinueOnError keeps optimizing the remaining layers after one
	// fails, collecting every per-layer error (joined in the returned
	// error) and still returning the layers that succeeded. The default
	// (false) is errgroup-style fail-fast: the first failure cancels the
	// sibling layer searches, which then return their best-so-far mappings
	// with Result.Stopped = StopCanceled.
	ContinueOnError bool
	// Resilience, when non-nil, routes every layer through the graceful-
	// degradation path (Engine.OptimizeResilient): bounded retries with
	// budget backoff, then the policy's fallback-mapper chain, with every
	// accepted mapping passing the final audit. Each layer's attempts are
	// recorded in its Result.Attempts / Result.FallbackUsed. Nil (the
	// default) is the legacy single-attempt path, bit-identical to before.
	Resilience *RetryPolicy
}

// FailureCause classifies why a layer's search failed (LayerError.Cause).
// The taxonomy lives in internal/core so the network scheduler and the
// scheduler service (internal/server) share one classifier.
type FailureCause = core.FailureCause

const (
	// CauseInjected: a deterministic chaos fault (internal/faults) was the
	// root cause, directly or inside a contained panic.
	CauseInjected = core.CauseInjected
	// CausePanic: a contained panic (poisoned cost model, broken callback)
	// not attributable to an injected fault.
	CausePanic = core.CausePanic
	// CauseDeadline: a wall-clock deadline expired before any valid mapping
	// was completed.
	CauseDeadline = core.CauseDeadline
	// CauseSiblingCancel: the layer was canceled by the fail-fast policy
	// after a sibling layer failed first.
	CauseSiblingCancel = core.CauseSiblingCancel
	// CauseSearch: an ordinary search failure (invalid inputs, no feasible
	// candidates, exhausted resilient attempts).
	CauseSearch = core.CauseSearch
	// CauseWatchdog: the scheduler service's per-job watchdog canceled a
	// search that stopped reporting progress.
	CauseWatchdog = core.CauseWatchdog
)

// LayerError is a per-layer scheduling failure with its classified cause.
// Error renders as "<layer>: [<cause>] <err>" so logs keep the layer prefix
// older tooling greps for; Unwrap exposes the underlying failure for
// errors.Is/As.
type LayerError = core.LayerError

// CauseOf extracts the classified failure cause from an error chain:
// LayerError's recorded cause when present, otherwise a direct
// classification of err itself. A nil error has no cause ("").
func CauseOf(err error) FailureCause { return core.CauseOf(err) }

// ScheduleNetwork maps every layer of a network onto the architecture,
// optimizing layers concurrently (each layer's search is independent), and
// returns per-layer mappings plus network totals. Repeats lets callers
// weight shapes that occur multiple times (e.g. the four conv2_x blocks of
// ResNet-18); pass nil for one occurrence each. It is ScheduleNetworkContext
// with a background context and fail-fast error policy.
func ScheduleNetwork(network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt Options) (NetworkSchedule, error) {
	return ScheduleNetworkContext(context.Background(), network, shapes, batch, repeats, a, NetworkOptions{Options: opt})
}

// ScheduleNetworkContext is (*Engine).ScheduleNetworkContext on a transient
// Engine: the layers of one call still share a compilation cache, so a
// network's repeated shapes (e.g. ResNet-18's conv2_x block) compile once,
// but nothing is retained across calls. Hold an Engine to reuse compiled
// artifacts between networks.
func ScheduleNetworkContext(ctx context.Context, network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt NetworkOptions) (NetworkSchedule, error) {
	return NewEngine().ScheduleNetworkContext(ctx, network, shapes, batch, repeats, a, opt)
}

// ScheduleNetwork maps every layer of a network through the Engine's
// compilation cache. It is (*Engine).ScheduleNetworkContext with a background
// context and fail-fast error policy.
func (e *Engine) ScheduleNetwork(network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt Options) (NetworkSchedule, error) {
	return e.ScheduleNetworkContext(context.Background(), network, shapes, batch, repeats, a, NetworkOptions{Options: opt})
}

// ScheduleNetworkContext maps every layer of a network onto the architecture
// under ctx. It is a thin adapter over the fusion IR: the (network, shapes,
// batch, repeats) tuple builds a Network via FromConvShapes, which
// ScheduleNetworkIR then schedules layer by layer — identical results to the
// pre-IR pipeline, including the error policy and repeats weighting.
func (e *Engine) ScheduleNetworkContext(ctx context.Context, network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt NetworkOptions) (NetworkSchedule, error) {
	net, prefail, err := convNetworkIR(network, shapes, batch, repeats)
	if err != nil {
		return NetworkSchedule{}, err
	}
	return e.scheduleNetworkIR(ctx, net, a, opt, prefail)
}

// convNetworkIR builds the conv-chain IR with the legacy per-layer panic
// containment: a pathological shape whose workload construction panics
// (tensor.MustNew) must fail as *that layer's* scheduling error — siblings
// still run — not abort the whole call. Such shapes are swapped for a
// trivial placeholder so the IR still carries one layer per shape, and the
// contained panic is returned as the layer's pre-existing failure.
func convNetworkIR(name string, shapes []ConvShape, batch int, repeats []int) (*Network, []error, error) {
	var prefail []error
	probed := shapes
	for i := range shapes {
		err := func(i int) (err error) {
			defer func() {
				if pe := anytime.PanicErrorFrom(recover(), "schedule layer "+shapes[i].Name, nil); pe != nil {
					err = pe
				}
			}()
			shapes[i].Inference(batch)
			return nil
		}(i)
		if err == nil {
			continue
		}
		if prefail == nil {
			prefail = make([]error, len(shapes))
			probed = append([]ConvShape(nil), shapes...)
		}
		prefail[i] = err
		probed[i] = ConvShape{Name: shapes[i].Name, K: 1, C: 1, P: 1, Q: 1, R: 1, S: 1, StrideH: 1, StrideW: 1}
	}
	net, err := network.FromConvShapes(name, probed, batch, repeats)
	if err != nil {
		return nil, nil, err
	}
	return net, prefail, nil
}

// ScheduleNetworkIR maps every layer of an IR network onto the architecture
// under ctx, one independent search per layer (no fusion), routing every
// search through the Engine's compilation cache (repeated shapes compile
// once; an already-warm Engine recompiles nothing). The per-layer searches
// run concurrently and inherit ctx (plus Options.Timeout, which bounds each
// layer's search individually), so canceling ctx degrades every in-flight
// layer to its best-so-far mapping. Each layer contributes one LayerSchedule
// whose totals are weighted by its Repeats.
//
// Error policy: a failed layer never aborts the others mid-flight without
// trace. By default the first failure cancels the sibling searches
// (errgroup-style fail-fast) and the joined errors of every failed layer are
// returned; with opt.ContinueOnError all layers run to their own conclusion
// and the schedule keeps every layer that succeeded. In both modes the
// returned error is the errors.Join of all per-layer failures, and a panic
// in one layer's search (e.g. a poisoned cost-model evaluation) is isolated
// to that layer as an *anytime.PanicError instead of crashing the process.
func (e *Engine) ScheduleNetworkIR(ctx context.Context, net *Network, a *Arch, opt NetworkOptions) (NetworkSchedule, error) {
	return e.scheduleNetworkIR(ctx, net, a, opt, nil)
}

// scheduleNetworkIR is ScheduleNetworkIR plus the legacy adapter's pre-failed
// layers: a non-nil prefail[i] fails layer i through the ordinary per-layer
// error path (classification, fail-fast cancellation) without running a
// search for it.
func (e *Engine) scheduleNetworkIR(ctx context.Context, net *Network, a *Arch, opt NetworkOptions, prefail []error) (NetworkSchedule, error) {
	if net == nil {
		return NetworkSchedule{}, errors.New("schedule network: nil network")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	out := NetworkSchedule{Network: net.Name, Layers: make([]LayerSchedule, len(net.Layers))}
	errs := make([]error, len(net.Layers))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// siblingFailed is set before the fail-fast cancel fires, so a layer
	// whose search died *because* of that cancellation classifies as
	// sibling-cancel rather than an ordinary search failure. The store
	// happens-before the cancel, and the cancel happens-before any sibling
	// observes it, so the flag is always visible to the layers it explains.
	var siblingFailed atomic.Bool
	failLayer := func(i int, name string, err error) {
		lerr := &LayerError{Layer: name, Cause: core.ClassifyFailure(err, siblingFailed.Load()), Err: err}
		errs[i] = lerr
		out.Layers[i].Err = lerr
		if !opt.ContinueOnError {
			siblingFailed.Store(true)
			cancel() // fail fast: siblings stop at their next poll
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range net.Layers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			l := &net.Layers[i]
			out.Layers[i].Layer = l.Name
			defer func() {
				if e := anytime.PanicErrorFrom(recover(), "schedule layer "+l.Name, nil); e != nil {
					failLayer(i, l.Name, e)
				}
			}()
			if prefail != nil && prefail[i] != nil {
				failLayer(i, l.Name, prefail[i])
				return
			}
			// Each layer's search gets its own root span — its own thread
			// row in the exported trace — because layers run concurrently
			// and would otherwise render as one overlapped track.
			lctx := ctx
			if tr := obs.TraceOf(ctx); tr != nil {
				lsp := tr.StartRoot("layer " + l.Name)
				defer lsp.End()
				lctx = obs.WithSpan(ctx, lsp)
			}
			var res Result
			var err error
			if opt.Resilience != nil {
				res, err = e.core.OptimizeResilient(lctx, l.Workload, a, opt.Options, *opt.Resilience)
			} else {
				res, err = e.OptimizeContext(lctx, l.Workload, a, opt.Options)
			}
			if err != nil {
				failLayer(i, l.Name, err)
				return
			}
			out.Layers[i] = LayerSchedule{Layer: l.Name, Result: res, Repeats: l.Repeats}
		}(i)
	}
	wg.Wait()

	for i := range out.Layers {
		l := &out.Layers[i]
		if l.Err != nil || l.Result.Mapping == nil {
			out.Failed++
			continue
		}
		out.TotalEnergyPJ += l.Result.Report.EnergyPJ * float64(l.Repeats)
		out.TotalCycles += l.Result.Report.Cycles * float64(l.Repeats)
	}
	out.EDP = out.TotalEnergyPJ * out.TotalCycles
	out.Elapsed = time.Since(start)
	return out, errors.Join(errs...)
}

// ScheduleNetworkFused is (*Engine).ScheduleNetworkFused on a transient
// Engine.
func ScheduleNetworkFused(ctx context.Context, net *Network, a *Arch, opt NetworkOptions, fuse FusionOptions) (NetworkSchedule, error) {
	return NewEngine().ScheduleNetworkFused(ctx, net, a, opt, fuse)
}

// ScheduleNetworkFused schedules the network with fusion-aware cuts
// (internal/core's fused solver): contiguous chain segments connected by IR
// edges may execute as one group whose intermediate tensors stay resident
// on-chip instead of round-tripping DRAM, and an exact DP over the cut
// space picks the grouping with the lowest total EDP. The all-singleton cut
// is always a candidate, so the fused schedule never scores worse than the
// unfused baseline (returned alongside in UnfusedEDP).
//
// The returned schedule expands layer repeats: Layers holds one entry per
// executed chain position with Repeats 1, and Groups records the chosen
// fusion cut over those positions. fuse.Resilience defaults to
// opt.Resilience, so a caller's existing retry policy covers the fused
// member searches too. Scheduling is fail-fast on the singleton baseline
// (its failures are joined per-layer errors); a failed fused member merely
// discards the groups that needed it.
func (e *Engine) ScheduleNetworkFused(ctx context.Context, net *Network, a *Arch, opt NetworkOptions, fuse FusionOptions) (NetworkSchedule, error) {
	if fuse.Resilience == nil {
		fuse.Resilience = opt.Resilience
	}
	res, err := e.core.SolveNetworkFused(ctx, net, a, opt.Options, fuse)
	if err != nil {
		return NetworkSchedule{}, err
	}
	out := NetworkSchedule{
		Network:       res.Network,
		Fused:         true,
		TotalEnergyPJ: res.TotalEnergyPJ,
		TotalCycles:   res.TotalCycles,
		EDP:           res.EDP,
		UnfusedEDP:    res.UnfusedEDP,
		Elapsed:       res.Elapsed,
	}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, GroupSchedule{
			Layers:   append([]string(nil), g.Layers...),
			Start:    g.Start,
			End:      g.End,
			PinLevel: g.PinLevel,
			EnergyPJ: g.EnergyPJ,
			Cycles:   g.Cycles,
		})
		for i, m := range g.Members {
			out.Layers = append(out.Layers, LayerSchedule{Layer: g.Layers[i], Result: m, Repeats: 1})
		}
	}
	return out, nil
}

// ResNet18Repeats gives the occurrence count of each ResNet18Layers shape in
// the full 18-layer network (the per-shape tables list distinct shapes once).
func ResNet18Repeats() []int { return workloads.ResNet18Repeats() }

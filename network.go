package sunstone

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sunstone/internal/anytime"
	"sunstone/internal/core"
	"sunstone/internal/obs"
)

// LayerSchedule is one layer's outcome within a network schedule.
type LayerSchedule struct {
	Layer   string
	Result  Result
	Repeats int // identical layers mapped once, counted Repeats times
	// Err is this layer's failure, if any (nil for a mapped layer). Failed
	// layers carry no mapping and are excluded from the network totals.
	Err error
}

// NetworkSchedule aggregates a whole network's mapping results.
type NetworkSchedule struct {
	Network       string
	Layers        []LayerSchedule
	TotalEnergyPJ float64
	TotalCycles   float64
	// EDP is the network-level energy-delay product (total energy x total
	// cycles, layers executed back to back).
	EDP float64
	// Failed counts layers that returned an error; when it is non-zero the
	// totals cover only the layers that succeeded.
	Failed  int
	Elapsed time.Duration
}

// NetworkOptions configures ScheduleNetworkContext: the per-layer optimizer
// Options plus network-level policy.
type NetworkOptions struct {
	Options
	// ContinueOnError keeps optimizing the remaining layers after one
	// fails, collecting every per-layer error (joined in the returned
	// error) and still returning the layers that succeeded. The default
	// (false) is errgroup-style fail-fast: the first failure cancels the
	// sibling layer searches, which then return their best-so-far mappings
	// with Result.Stopped = StopCanceled.
	ContinueOnError bool
	// Resilience, when non-nil, routes every layer through the graceful-
	// degradation path (Engine.OptimizeResilient): bounded retries with
	// budget backoff, then the policy's fallback-mapper chain, with every
	// accepted mapping passing the final audit. Each layer's attempts are
	// recorded in its Result.Attempts / Result.FallbackUsed. Nil (the
	// default) is the legacy single-attempt path, bit-identical to before.
	Resilience *RetryPolicy
}

// FailureCause classifies why a layer's search failed (LayerError.Cause).
// The taxonomy lives in internal/core so the network scheduler and the
// scheduler service (internal/server) share one classifier.
type FailureCause = core.FailureCause

const (
	// CauseInjected: a deterministic chaos fault (internal/faults) was the
	// root cause, directly or inside a contained panic.
	CauseInjected = core.CauseInjected
	// CausePanic: a contained panic (poisoned cost model, broken callback)
	// not attributable to an injected fault.
	CausePanic = core.CausePanic
	// CauseDeadline: a wall-clock deadline expired before any valid mapping
	// was completed.
	CauseDeadline = core.CauseDeadline
	// CauseSiblingCancel: the layer was canceled by the fail-fast policy
	// after a sibling layer failed first.
	CauseSiblingCancel = core.CauseSiblingCancel
	// CauseSearch: an ordinary search failure (invalid inputs, no feasible
	// candidates, exhausted resilient attempts).
	CauseSearch = core.CauseSearch
	// CauseWatchdog: the scheduler service's per-job watchdog canceled a
	// search that stopped reporting progress.
	CauseWatchdog = core.CauseWatchdog
)

// LayerError is a per-layer scheduling failure with its classified cause.
// Error renders as "<layer>: [<cause>] <err>" so logs keep the layer prefix
// older tooling greps for; Unwrap exposes the underlying failure for
// errors.Is/As.
type LayerError = core.LayerError

// CauseOf extracts the classified failure cause from an error chain:
// LayerError's recorded cause when present, otherwise a direct
// classification of err itself. A nil error has no cause ("").
func CauseOf(err error) FailureCause { return core.CauseOf(err) }

// ScheduleNetwork maps every layer of a network onto the architecture,
// optimizing layers concurrently (each layer's search is independent), and
// returns per-layer mappings plus network totals. Repeats lets callers
// weight shapes that occur multiple times (e.g. the four conv2_x blocks of
// ResNet-18); pass nil for one occurrence each. It is ScheduleNetworkContext
// with a background context and fail-fast error policy.
func ScheduleNetwork(network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt Options) (NetworkSchedule, error) {
	return ScheduleNetworkContext(context.Background(), network, shapes, batch, repeats, a, NetworkOptions{Options: opt})
}

// ScheduleNetworkContext is (*Engine).ScheduleNetworkContext on a transient
// Engine: the layers of one call still share a compilation cache, so a
// network's repeated shapes (e.g. ResNet-18's conv2_x block) compile once,
// but nothing is retained across calls. Hold an Engine to reuse compiled
// artifacts between networks.
func ScheduleNetworkContext(ctx context.Context, network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt NetworkOptions) (NetworkSchedule, error) {
	return NewEngine().ScheduleNetworkContext(ctx, network, shapes, batch, repeats, a, opt)
}

// ScheduleNetwork maps every layer of a network through the Engine's
// compilation cache. It is (*Engine).ScheduleNetworkContext with a background
// context and fail-fast error policy.
func (e *Engine) ScheduleNetwork(network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt Options) (NetworkSchedule, error) {
	return e.ScheduleNetworkContext(context.Background(), network, shapes, batch, repeats, a, NetworkOptions{Options: opt})
}

// ScheduleNetworkContext maps every layer of a network onto the architecture
// under ctx, routing every layer's search through the Engine's compilation
// cache (repeated shapes compile once; an already-warm Engine recompiles
// nothing). The per-layer searches run concurrently and inherit ctx (plus
// Options.Timeout, which bounds each layer's search individually), so
// canceling ctx degrades every in-flight layer to its best-so-far mapping.
//
// Error policy: a failed layer never aborts the others mid-flight without
// trace. By default the first failure cancels the sibling searches
// (errgroup-style fail-fast) and the joined errors of every failed layer are
// returned; with opt.ContinueOnError all layers run to their own conclusion
// and the schedule keeps every layer that succeeded. In both modes the
// returned error is the errors.Join of all per-layer failures, and a panic
// in one layer's search (e.g. a poisoned cost-model evaluation) is isolated
// to that layer as an *anytime.PanicError instead of crashing the process.
func (e *Engine) ScheduleNetworkContext(ctx context.Context, network string, shapes []ConvShape, batch int, repeats []int, a *Arch, opt NetworkOptions) (NetworkSchedule, error) {
	if repeats != nil && len(repeats) != len(shapes) {
		return NetworkSchedule{}, fmt.Errorf("repeats has %d entries for %d shapes", len(repeats), len(shapes))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	out := NetworkSchedule{Network: network, Layers: make([]LayerSchedule, len(shapes))}
	errs := make([]error, len(shapes))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// siblingFailed is set before the fail-fast cancel fires, so a layer
	// whose search died *because* of that cancellation classifies as
	// sibling-cancel rather than an ordinary search failure. The store
	// happens-before the cancel, and the cancel happens-before any sibling
	// observes it, so the flag is always visible to the layers it explains.
	var siblingFailed atomic.Bool
	failLayer := func(i int, name string, err error) {
		lerr := &LayerError{Layer: name, Cause: core.ClassifyFailure(err, siblingFailed.Load()), Err: err}
		errs[i] = lerr
		out.Layers[i].Err = lerr
		if !opt.ContinueOnError {
			siblingFailed.Store(true)
			cancel() // fail fast: siblings stop at their next poll
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range shapes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out.Layers[i].Layer = shapes[i].Name
			defer func() {
				if e := anytime.PanicErrorFrom(recover(), "schedule layer "+shapes[i].Name, nil); e != nil {
					failLayer(i, shapes[i].Name, e)
				}
			}()
			w := shapes[i].Inference(batch)
			// Each layer's search gets its own root span — its own thread
			// row in the exported trace — because layers run concurrently
			// and would otherwise render as one overlapped track.
			lctx := ctx
			if tr := obs.TraceOf(ctx); tr != nil {
				lsp := tr.StartRoot("layer " + shapes[i].Name)
				defer lsp.End()
				lctx = obs.WithSpan(ctx, lsp)
			}
			var res Result
			var err error
			if opt.Resilience != nil {
				res, err = e.core.OptimizeResilient(lctx, w, a, opt.Options, *opt.Resilience)
			} else {
				res, err = e.OptimizeContext(lctx, w, a, opt.Options)
			}
			if err != nil {
				failLayer(i, shapes[i].Name, err)
				return
			}
			rep := 1
			if repeats != nil {
				rep = repeats[i]
			}
			out.Layers[i] = LayerSchedule{Layer: shapes[i].Name, Result: res, Repeats: rep}
		}(i)
	}
	wg.Wait()

	for i := range out.Layers {
		l := &out.Layers[i]
		if l.Err != nil || l.Result.Mapping == nil {
			out.Failed++
			continue
		}
		out.TotalEnergyPJ += l.Result.Report.EnergyPJ * float64(l.Repeats)
		out.TotalCycles += l.Result.Report.Cycles * float64(l.Repeats)
	}
	out.EDP = out.TotalEnergyPJ * out.TotalCycles
	out.Elapsed = time.Since(start)
	return out, errors.Join(errs...)
}

// ResNet18Repeats gives the occurrence count of each ResNet18Layers shape in
// the full 18-layer network (the per-shape tables list distinct shapes once).
func ResNet18Repeats() []int {
	return []int{
		1, // conv1
		4, // conv2_x
		1, // conv3_1
		1, // conv3_ds
		3, // conv3_x
		1, // conv4_1
		1, // conv4_ds
		3, // conv4_x
		1, // conv5_1
		1, // conv5_ds
		3, // conv5_x
	}
}

// Command experiments regenerates the paper's evaluation tables and figures
// (Section V) and prints them as text.
//
// Usage:
//
//	experiments -exp all            # everything, full budgets (minutes)
//	experiments -exp fig8 -quick    # one figure, CI-speed budgets
//
// Experiments: table1, table3, fig6, fig7, fig8, table6, fig9, fusion, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sunstone/internal/core"
	"sunstone/internal/experiments"
	"sunstone/internal/obs"
	"sunstone/internal/profiling"
)

var (
	exp      = flag.String("exp", "all", "experiment: table1 | table3 | fig6 | fig7 | fig8 | table6 | fig9 | spread | fusion | all")
	quick    = flag.Bool("quick", false, "shrink layer sets and search budgets")
	seed     = flag.Int64("seed", 1, "seed for randomized baselines")
	csv      = flag.Bool("csv", false, "emit fig6/fig7/fig8 rows as CSV instead of text")
	layerTO  = flag.Duration("layer-timeout", 0, "per-workload wall-clock budget for every tool (0 = each tool's natural budget); early-stopped runs report best-so-far with a stopped annotation")
	threads  = flag.Int("threads", 0, "worker goroutines per search (0 = all cores); results are identical at any value")
	anSeed   = flag.Bool("analytical-seed", true, "install the closed-form analytical seed incumbent in every Sunstone cell (-seed is the RNG seed)")
	anBounds = flag.Bool("analytical-bounds", true, "prune candidates by the admissible analytical lower bound in every Sunstone cell")
	cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of every search's phases to this file")
)

func main() {
	flag.Parse()
	if *layerTO < 0 {
		fmt.Fprintln(os.Stderr, "-layer-timeout must be >= 0")
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	defer stopProf()
	cfg := experiments.Config{
		Quick: *quick, Seed: *seed, LayerTimeout: *layerTO, Threads: *threads,
		Analytical: &core.AnalyticalOptions{Seed: *anSeed, Bounds: *anBounds},
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		cfg.Ctx = obs.WithTrace(context.Background(), tr)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			defer f.Close()
			if err := tr.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "experiments: trace written to %s (%d events)\n", *traceOut, tr.Events())
		}()
	}

	run := func(name string, f func()) {
		if *exp == name || *exp == "all" {
			f()
			fmt.Println()
		}
	}

	run("table1", func() { fmt.Print(experiments.Table1()) })
	run("table3", func() { fmt.Print(experiments.Table3()) })
	figure := func(title string, runs []experiments.ToolRun) {
		if *csv {
			fmt.Print(experiments.RunsCSV(runs))
			return
		}
		fmt.Print(experiments.RenderRuns(title, runs))
		fmt.Print(experiments.RenderSummaries(experiments.Summarize(runs)))
	}
	run("fig6", func() {
		figure("Fig. 6 — non-DNN workloads on the conventional accelerator", experiments.Fig6(cfg))
	})
	run("fig7", func() {
		figure("Fig. 7 — Inception-v3 weight update (batch 16), conventional accelerator", experiments.Fig7(cfg))
	})
	run("fig8", func() {
		figure("Fig. 8 — ResNet-18 inference (batch 16), Simba-like accelerator", experiments.Fig8(cfg))
	})
	run("table6", func() { fmt.Print(experiments.RenderTable6(experiments.Table6(cfg))) })
	run("fusion", func() {
		runs := experiments.Fusion(cfg)
		if *csv {
			fmt.Print(experiments.RunsCSV(runs))
			return
		}
		fmt.Print(experiments.RenderFusion(runs))
	})
	run("spread", func() { fmt.Print(experiments.RenderSpread(experiments.DataflowSpread(cfg))) })
	run("fig9", func() {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig9:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderFig9(r))
	})

	switch *exp {
	case "table1", "table3", "fig6", "fig7", "fig8", "table6", "fig9", "spread", "fusion", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

package main

import "testing"

func TestParseDims(t *testing.T) {
	d, err := parseDims("N=1,K=64,c=32", []string{"N", "K", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if d["N"] != 1 || d["K"] != 64 || d["C"] != 32 {
		t.Errorf("parsed %v", d)
	}
	for _, bad := range []string{"", "K=0", "K=x", "K", "K=64"} {
		if _, err := parseDims(bad, []string{"K", "C"}); err == nil {
			t.Errorf("parseDims(%q) should fail", bad)
		}
	}
}

func TestPickArch(t *testing.T) {
	for _, name := range []string{"conventional", "simba", "diannao", "tiny"} {
		if _, err := pickArch(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := pickArch("nope"); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestPickTensorDataset(t *testing.T) {
	for _, name := range []string{"nell2", "netflix", "poisson1"} {
		if _, err := pickTensorDataset(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := pickTensorDataset("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

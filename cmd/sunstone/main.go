// Command sunstone optimizes a tensor-algebra workload for a spatial
// accelerator and prints the best mapping found with its cost report.
//
// Usage examples:
//
//	sunstone -arch simba -net resnet18 -layer conv2_x -batch 16
//	sunstone -arch conventional -workload mttkrp -dataset nell2
//	sunstone -arch conventional -workload conv -dims N=16,K=64,C=64,P=56,Q=56,R=3,S=3
//	sunstone -arch conventional -net inception -layer 1x7_deep -weight-update
//	sunstone -arch simba -net resnet18 -layer conv3_1 -compare
//	sunstone -arch conventional -net resnet18 -all-layers -fuse
//	sunstone -arch conventional -net transformer -all-layers -fuse
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"sunstone"
	"sunstone/internal/faults"
	"sunstone/internal/profiling"
)

var (
	archName  = flag.String("arch", "conventional", "architecture: conventional | simba | diannao | tiny")
	workload  = flag.String("workload", "", "kernel: conv | mttkrp | ttmc | sddmm | mmc | tcl | fc")
	dataset   = flag.String("dataset", "nell2", "dataset for mttkrp/ttmc: nell2 | netflix | poisson1; for sddmm: bcsstk17 | cant")
	net       = flag.String("net", "", "layer table: resnet18 | inception | alexnet | vgg16 | transformer (-all-layers only)")
	layer     = flag.String("layer", "", "layer name from -net (empty = list layers)")
	allLayers = flag.Bool("all-layers", false, "schedule every layer of -net and print network totals")
	fuse      = flag.Bool("fuse", false, "with -all-layers: fusion-aware scheduling — fusible layer groups keep their intermediates resident on-chip, and the best fusion cut by total EDP is reported against the unfused baseline")
	maxGroup  = flag.Int("max-group", 0, "with -fuse: longest fused group in chain positions (0 = default 4)")
	batch     = flag.Int("batch", 16, "batch size for -net layers")
	wu        = flag.Bool("weight-update", false, "use the weight-update (training) form of the layer")
	dims      = flag.String("dims", "", "explicit conv dims, e.g. N=16,K=64,C=64,P=56,Q=56,R=3,S=3")
	wfile     = flag.String("workload-file", "", "load the workload from a JSON description")
	describe  = flag.String("describe", "", "load the workload from a paper-style textual description file")
	afile     = flag.String("arch-file", "", "load the architecture from a JSON description")
	saveMap   = flag.String("save-mapping", "", "write the best mapping to this JSON file")
	topDown   = flag.Bool("top-down", false, "optimize top-down instead of bottom-up (Table VI)")
	objective = flag.String("objective", "edp", "figure of merit: edp | energy | delay | ed2p")
	beam      = flag.Int("beam", 0, "beam width (0 = default)")
	seedOn    = flag.Bool("seed", true, "install the closed-form analytical seed mapping as the initial incumbent")
	boundsOn  = flag.Bool("bounds", true, "prune candidates whose admissible lower bound already exceeds the incumbent")
	threads   = flag.Int("threads", 0, "worker goroutines per search — expansion, evaluation and polish fan-outs (0 = all cores); results are identical at any value")
	compare   = flag.Bool("compare", false, "also run the baseline mappers on the same problem")
	showBreak = flag.Bool("breakdown", false, "print the per-component energy breakdown")
	accesses  = flag.Bool("accesses", false, "print per-level, per-tensor access counts")
	explain   = flag.Bool("explain", false, "print the workload's reuse table, pruned loop orderings, and the mapping's loop nest")
	verify    = flag.Bool("verify", false, "functionally execute the mapping and check it against the reference result")
	timeout   = flag.Duration("timeout", 0, "wall-clock budget per search, e.g. 500ms or 10s (0 = unbounded); on expiry the best mapping found so far is reported")
	contErr   = flag.Bool("continue-on-error", false, "with -all-layers: keep scheduling the remaining layers after one fails instead of failing fast")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev) of the search's phases to this file")
	progress  = flag.Bool("progress", false, "stream live search progress (phases, incumbent improvements) to stderr")
	baseList  = flag.String("baselines", "timeloop-fast,dmaze-fast,interstellar,cosa", "with -compare: comma-separated baseline registry names, or 'all'")
	retries   = flag.Int("retries", 0, "enable the resilient search path with this many primary retries at backed-off budgets (0 = plain single-attempt search unless -fallback is set)")
	fallback  = flag.String("fallback", "", "with the resilient path: comma-separated fallback mapper chain tried after the primary retries (empty = default chain, 'none' = retries only); enables resilience when set")
	faultSpec = flag.String("fault-spec", "", "arm deterministic fault injection, e.g. 'evaluate:panic:0.3', 'compile:error:0.1,seed=42', or 'all:mixed:0.3' (chaos testing; pair with -retries)")
)

// resiliencePolicy translates -retries/-fallback into the RetryPolicy for the
// graceful-degradation path; nil means the flags were not used and searches
// take the legacy single-attempt path.
func resiliencePolicy() *sunstone.RetryPolicy {
	if *retries <= 0 && *fallback == "" {
		return nil
	}
	pol := sunstone.RetryPolicy{}
	if *retries > 0 {
		pol.Retries = *retries
	}
	switch *fallback {
	case "":
	case "none":
		pol.Fallbacks = []string{} // non-nil and empty: no fallback chain
	default:
		for _, name := range strings.Split(*fallback, ",") {
			if name = strings.TrimSpace(name); name != "" {
				pol.Fallbacks = append(pol.Fallbacks, name)
			}
		}
	}
	return &pol
}

// armFaults activates the -fault-spec injector for the whole invocation.
func armFaults() {
	if *faultSpec == "" {
		return
	}
	inj, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	faults.Activate(inj)
	fmt.Fprintf(os.Stderr, "sunstone: fault injection armed (%s)\n", *faultSpec)
}

// printAttempts summarizes a resilient result's attempt record on stderr.
func printAttempts(res sunstone.Result) {
	if len(res.Attempts) == 0 {
		return
	}
	var parts []string
	for _, at := range res.Attempts {
		status := "ok"
		if at.Err != nil {
			status = "failed"
		}
		parts = append(parts, fmt.Sprintf("%s(%s)", at.Mapper, status))
	}
	fmt.Fprintf(os.Stderr, "sunstone: %d attempt(s): %s\n", len(res.Attempts), strings.Join(parts, " -> "))
	if res.FallbackUsed != "" {
		fmt.Fprintf(os.Stderr, "sunstone: degraded to fallback mapper %q\n", res.FallbackUsed)
	}
}

// searchContext returns the context every search in this invocation runs
// under: the -trace collector installed when requested, plus a flush function
// to write the collected spans at exit.
func searchContext() (context.Context, func()) {
	ctx := context.Background()
	if *traceOut == "" {
		return ctx, func() {}
	}
	tr := sunstone.NewTrace()
	return sunstone.WithTrace(ctx, tr), func() {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sunstone: trace written to %s (%d events)\n", *traceOut, tr.Events())
	}
}

// progressTicker returns the Options.Progress callback for -progress: a live
// stderr ticker of phase boundaries and incumbent improvements.
func progressTicker() sunstone.ProgressFunc {
	if !*progress {
		return nil
	}
	return func(ev sunstone.ProgressEvent) {
		switch ev.Kind {
		case sunstone.IncumbentImproved:
			fmt.Fprintf(os.Stderr, "[%7.3fs] %-20s best %-12.4e %d generated, %d evaluated\n",
				ev.Elapsed.Seconds(), ev.Phase, ev.Score, ev.Generated, ev.Evaluated)
		case sunstone.PhaseStarted:
			fmt.Fprintf(os.Stderr, "[%7.3fs] > %s\n", ev.Elapsed.Seconds(), ev.Phase)
		case sunstone.PhaseFinished:
			fmt.Fprintf(os.Stderr, "[%7.3fs] < %s  (%d generated, %d evaluated)\n",
				ev.Elapsed.Seconds(), ev.Phase, ev.Generated, ev.Evaluated)
		}
	}
}

// pickBaselines resolves the -baselines list against the registry; the
// mappers come from eng.Baselines, so tools that support session injection
// share the cost sessions already compiled for the main search.
func pickBaselines(eng *sunstone.Engine) ([]sunstone.NamedBaseline, error) {
	all := eng.Baselines()
	if *baseList == "all" {
		return all, nil
	}
	byName := map[string]sunstone.NamedBaseline{}
	var known []string
	for _, nb := range all {
		byName[nb.Name] = nb
		known = append(known, nb.Name)
	}
	var out []sunstone.NamedBaseline
	for _, name := range strings.Split(*baseList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		nb, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown baseline %q (have: %s, or 'all')", name, strings.Join(known, ", "))
		}
		out = append(out, nb)
	}
	return out, nil
}

func main() {
	flag.Parse()
	stopProf, perr := profiling.Start(*cpuProf, *memProf)
	if perr != nil {
		fatal(perr)
	}
	defer stopProf()
	armFaults()
	// One Engine per invocation: the main search, -all-layers network
	// scheduling, and the -compare baselines all share its compiled
	// per-problem artifacts.
	eng := sunstone.NewEngine()
	var a *sunstone.Arch
	var err error
	if *afile != "" {
		data, rerr := os.ReadFile(*afile)
		if rerr != nil {
			fatal(rerr)
		}
		a, err = sunstone.DecodeArch(data)
	} else {
		a, err = pickArch(*archName)
	}
	if err != nil {
		fatal(err)
	}
	if *allLayers {
		runAllLayers(eng)
		return
	}
	var w *sunstone.Workload
	switch {
	case *describe != "":
		data, rerr := os.ReadFile(*describe)
		if rerr != nil {
			fatal(rerr)
		}
		w, err = sunstone.ParseWorkload(string(data))
	case *wfile != "":
		data, rerr := os.ReadFile(*wfile)
		if rerr != nil {
			fatal(rerr)
		}
		w, err = sunstone.DecodeWorkload(data)
	default:
		w, err = pickWorkload()
	}
	if err != nil {
		fatal(err)
	}

	opt := sunstone.Options{
		BeamWidth: *beam, Threads: *threads, Timeout: *timeout, Progress: progressTicker(),
		Analytical: &sunstone.AnalyticalOptions{Seed: *seedOn, Bounds: *boundsOn},
	}
	if *topDown {
		opt.Direction = sunstone.TopDown
	}
	switch *objective {
	case "edp":
		opt.Objective = sunstone.MinEDP
	case "energy":
		opt.Objective = sunstone.MinEnergy
	case "delay":
		opt.Objective = sunstone.MinDelay
	case "ed2p":
		opt.Objective = sunstone.MinED2P
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	ctx, flushTrace := searchContext()
	var res sunstone.Result
	if pol := resiliencePolicy(); pol != nil {
		res, err = eng.OptimizeResilient(ctx, w, a, opt, *pol)
	} else {
		res, err = eng.OptimizeContext(ctx, w, a, opt)
	}
	if err != nil {
		fatal(err)
	}
	printAttempts(res)
	fmt.Printf("workload: %s\narch: %s (%d MACs)\n\n", w.Name, a.Name, a.TotalMACs())
	fmt.Printf("best mapping:\n%s\n\n", indent(res.Mapping.String()))
	fmt.Printf("EDP      %.4e pJ*cycle\nenergy   %.4e pJ\ncycles   %.0f\nsearch   %v, %d candidates, %d orderings, %d threads\n",
		res.Report.EDP, res.Report.EnergyPJ, res.Report.Cycles,
		res.Elapsed, res.SpaceSize, res.OrderingsConsidered, effectiveThreads())
	st := res.Stats
	fmt.Printf("flow     %d generated = %d pruned (%d order, %d tile, %d unroll, %d analytic) + %d deduped + %d evaluated + %d skipped\n",
		st.Generated, st.Pruned(), st.PrunedOrdering, st.PrunedTiling, st.PrunedUnrolling,
		st.BoundPruned, st.Deduped, st.Evaluated, st.Skipped)
	if res.SeedEDP > 0 {
		fmt.Printf("seed     EDP %.4e analytic one-shot (%.2fx final)\n",
			res.SeedEDP, res.SeedEDP/res.Report.EDP)
	}
	if total := st.EvalCacheHits + st.EvalCacheMisses; total > 0 {
		fmt.Printf("cache    %.1f%% hit rate (%d/%d); beam cut %d, bound cut %d\n",
			100*float64(st.EvalCacheHits)/float64(total), st.EvalCacheHits, total, st.PrunedBeam, st.PrunedBound)
	}
	if res.Stopped != sunstone.StopComplete {
		fmt.Printf("stopped  %s — reporting the best mapping found before the signal\n", res.Stopped)
	}
	for _, cerr := range res.CandidateErrors {
		fmt.Fprintln(os.Stderr, "sunstone: candidate error:", cerr)
	}
	if *explain {
		fmt.Printf("\ninferred reuse (Table III view):\n%s", indent(w.ReuseTable()))
		fmt.Printf("\npruned loop orderings (Fig. 4 view):\n%s", indent(sunstone.ExplainOrderings(w)))
		fmt.Printf("\nmapped loop nest:\n%s", indent(res.Mapping.PseudoCode()))
	}
	if *verify {
		ok, verr := sunstone.VerifyMapping(res.Mapping)
		if verr != nil {
			fatal(verr)
		}
		if ok {
			fmt.Println("\nverification: mapped execution matches the reference result")
		} else {
			fmt.Println("\nverification: MISMATCH — mapped execution differs from the reference!")
			os.Exit(1)
		}
	}
	if *saveMap != "" {
		data, merr := sunstone.EncodeMapping(res.Mapping)
		if merr != nil {
			fatal(merr)
		}
		if werr := os.WriteFile(*saveMap, data, 0o644); werr != nil {
			fatal(werr)
		}
		fmt.Printf("mapping saved to %s\n", *saveMap)
	}
	if *showBreak {
		fmt.Printf("\nenergy breakdown:\n%s", indent(res.Report.BreakdownString()))
	}
	if *accesses {
		fmt.Printf("\naccess counts:\n%s", indent(res.Report.AccessTable()))
	}
	if *compare {
		bls, berr := pickBaselines(eng)
		if berr != nil {
			fatal(berr)
		}
		fmt.Println("\nbaselines:")
		for _, nb := range bls {
			// Baselines honor the same -timeout budget via MapContext, so
			// the comparison is wall-clock fair; they also inherit the
			// -trace collector, so each tool's run is one trace region.
			bctx := ctx
			if *timeout > 0 {
				var cancel context.CancelFunc
				bctx, cancel = context.WithTimeout(bctx, *timeout)
				defer cancel()
			}
			r := nb.Mapper.MapContext(bctx, w, a)
			note := ""
			if r.Stopped != sunstone.StopComplete {
				note = " [stopped: " + r.Stopped.String() + "]"
			}
			if !r.Valid {
				fmt.Printf("  %-10s INVALID (%s) in %v%s\n", nb.Mapper.Name(), r.InvalidReason, r.Elapsed.Round(1e6), note)
				continue
			}
			fmt.Printf("  %-10s EDP %.4e (%.2fx Sunstone) in %v%s\n",
				nb.Mapper.Name(), r.Report.EDP, r.Report.EDP/res.Report.EDP, r.Elapsed.Round(1e6), note)
		}
	}
	flushTrace()
}

// runAllLayers schedules the whole -net table through eng and prints network
// totals; repeated shapes compile their problem artifacts once.
func runAllLayers(eng *sunstone.Engine) {
	a, err := pickArch(*archName)
	if err != nil {
		fatal(err)
	}
	var table []sunstone.ConvShape
	var repeats []int
	var irNet *sunstone.Network
	switch *net {
	case "resnet18":
		table, repeats = sunstone.ResNet18Layers, sunstone.ResNet18Repeats()
	case "inception":
		table = sunstone.InceptionV3Layers
	case "alexnet":
		table = sunstone.AlexNetLayers
	case "vgg16":
		table = sunstone.VGG16Layers
	case "transformer":
		// The GEMM-chain preset is IR-native (no ConvShape table); -batch
		// does not apply — the chain is one transformer block's projections.
		irNet = sunstone.TransformerChain(512, 512, 2048)
	default:
		fatal(fmt.Errorf("-all-layers needs -net resnet18|inception|alexnet|vgg16|transformer"))
	}
	nopt := sunstone.NetworkOptions{
		Options: sunstone.Options{
			Threads: *threads, Timeout: *timeout, Progress: progressTicker(),
			Analytical: &sunstone.AnalyticalOptions{Seed: *seedOn, Bounds: *boundsOn},
		},
		ContinueOnError: *contErr,
		Resilience:      resiliencePolicy(),
	}
	ctx, flushTrace := searchContext()
	var sched sunstone.NetworkSchedule
	switch {
	case *fuse:
		if irNet == nil {
			irNet, err = sunstone.FromConvShapes(*net, table, *batch, repeats)
			if err != nil {
				fatal(err)
			}
		}
		sched, err = eng.ScheduleNetworkFused(ctx, irNet, a, nopt, sunstone.FusionOptions{MaxGroup: *maxGroup})
	case irNet != nil:
		sched, err = eng.ScheduleNetworkIR(ctx, irNet, a, nopt)
	default:
		sched, err = eng.ScheduleNetworkContext(ctx, *net, table, *batch, repeats, a, nopt)
	}
	fmt.Printf("%-12s %-3s %-12s %-12s %s\n", "layer", "x", "EDP", "energy pJ", "cycles")
	for _, l := range sched.Layers {
		if l.Err != nil {
			fmt.Printf("%-12s FAILED: %v\n", l.Layer, l.Err)
			continue
		}
		note := ""
		if l.Result.Stopped != sunstone.StopComplete {
			note = "  [stopped: " + l.Result.Stopped.String() + "]"
		}
		if l.Result.FallbackUsed != "" {
			note += "  [fallback: " + l.Result.FallbackUsed + "]"
		} else if len(l.Result.Attempts) > 1 {
			note += fmt.Sprintf("  [%d attempts]", len(l.Result.Attempts))
		}
		fmt.Printf("%-12s %-3d %-12.3e %-12.3e %.0f%s\n",
			l.Layer, l.Repeats, l.Result.Report.EDP, l.Result.Report.EnergyPJ, l.Result.Report.Cycles, note)
	}
	if sched.Fused {
		fmt.Printf("\nfusion cut (%d groups):\n", len(sched.Groups))
		for _, g := range sched.Groups {
			kind := "unfused"
			if g.End-g.Start > 1 {
				kind = "fused @" + a.Levels[g.PinLevel].Name
			}
			fmt.Printf("  [%2d,%2d) %-10s %-40s %.3e pJ  %.3e cycles\n",
				g.Start, g.End, kind, strings.Join(g.Layers, "+"), g.EnergyPJ, g.Cycles)
		}
		fmt.Printf("unfused EDP %.4e -> fused EDP %.4e (%.2fx better)\n",
			sched.UnfusedEDP, sched.EDP, sched.UnfusedEDP/sched.EDP)
	}
	fmt.Printf("\nnetwork totals: %.4e pJ, %.3e cycles, EDP %.4e (scheduled in %v",
		sched.TotalEnergyPJ, sched.TotalCycles, sched.EDP, sched.Elapsed.Round(1e6))
	if sched.Failed > 0 {
		fmt.Printf("; %d layer(s) failed, totals cover the rest", sched.Failed)
	}
	fmt.Println(")")
	flushTrace()
	if err != nil {
		fatal(err)
	}
}

func pickArch(name string) (*sunstone.Arch, error) {
	switch name {
	case "conventional":
		return sunstone.Conventional(), nil
	case "simba":
		return sunstone.Simba(), nil
	case "diannao":
		return sunstone.DianNao(), nil
	case "tiny":
		return sunstone.Tiny(256), nil
	}
	return nil, fmt.Errorf("unknown arch %q", name)
}

func pickWorkload() (*sunstone.Workload, error) {
	if *net != "" {
		return pickLayer()
	}
	switch *workload {
	case "conv":
		d, err := parseDims(*dims, []string{"N", "K", "C", "P", "Q", "R", "S"})
		if err != nil {
			return nil, err
		}
		return sunstone.Conv2D("conv", d["N"], d["K"], d["C"], d["P"], d["Q"], d["R"], d["S"], 1, 1), nil
	case "mttkrp":
		ds, err := pickTensorDataset(*dataset)
		if err != nil {
			return nil, err
		}
		return sunstone.MTTKRP("mttkrp_"+ds.name, ds.i, ds.j, ds.k, 32), nil
	case "ttmc":
		ds, err := pickTensorDataset(*dataset)
		if err != nil {
			return nil, err
		}
		return sunstone.TTMc("ttmc_"+ds.name, ds.i, ds.j, ds.k, 8), nil
	case "sddmm":
		switch *dataset {
		case "bcsstk17":
			return sunstone.SDDMM("sddmm_bcsstk17", 10974, 10974, 512), nil
		case "cant":
			return sunstone.SDDMM("sddmm_cant", 62451, 62451, 512), nil
		}
		return nil, fmt.Errorf("unknown sddmm dataset %q", *dataset)
	case "mmc":
		return sunstone.MMc("attention_mmc", 512, 64, 512, 64), nil
	case "tcl":
		return sunstone.TCL("tcl_vgg", 512, 7, 7, 32, 32, 32), nil
	case "fc":
		d, err := parseDims(*dims, []string{"N", "K", "C"})
		if err != nil {
			return nil, err
		}
		return sunstone.FC("fc", d["N"], d["K"], d["C"]), nil
	case "":
		return nil, fmt.Errorf("pick a -workload or a -net layer (see -h)")
	}
	return nil, fmt.Errorf("unknown workload %q", *workload)
}

type tdataset struct {
	name    string
	i, j, k int
}

func pickTensorDataset(name string) (tdataset, error) {
	switch name {
	case "nell2":
		return tdataset{"nell2", 12092, 9184, 28818}, nil
	case "netflix":
		return tdataset{"netflix", 480189, 17770, 2182}, nil
	case "poisson1":
		return tdataset{"poisson1", 1024, 1024, 1024}, nil
	}
	return tdataset{}, fmt.Errorf("unknown dataset %q", name)
}

func pickLayer() (*sunstone.Workload, error) {
	var table []sunstone.ConvShape
	switch *net {
	case "resnet18":
		table = sunstone.ResNet18Layers
	case "inception":
		table = sunstone.InceptionV3Layers
	case "alexnet":
		table = sunstone.AlexNetLayers
	case "vgg16":
		table = sunstone.VGG16Layers
	default:
		return nil, fmt.Errorf("unknown net %q", *net)
	}
	if *layer == "" {
		var names []string
		for _, cs := range table {
			names = append(names, cs.Name)
		}
		return nil, fmt.Errorf("pick a -layer from %s: %s", *net, strings.Join(names, ", "))
	}
	for _, cs := range table {
		if cs.Name == *layer {
			if *wu {
				return cs.WeightUpdate(*batch), nil
			}
			return cs.Inference(*batch), nil
		}
	}
	return nil, fmt.Errorf("layer %q not in %s", *layer, *net)
}

func parseDims(s string, required []string) (map[string]int, error) {
	out := map[string]int{}
	if s == "" {
		return nil, fmt.Errorf("-dims required, e.g. -dims %s=..,...", required[0])
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad dim %q", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad dim size %q", kv)
		}
		out[strings.ToUpper(parts[0])] = n
	}
	for _, r := range required {
		if out[r] == 0 {
			return nil, fmt.Errorf("missing dim %s", r)
		}
	}
	return out, nil
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sunstone:", err)
	os.Exit(2)
}

// effectiveThreads reports the worker-pool size a search actually uses: the
// -threads value when set, otherwise every available core (the library's
// Threads<=0 default).
func effectiveThreads() int {
	if *threads > 0 {
		return *threads
	}
	return runtime.GOMAXPROCS(0)
}

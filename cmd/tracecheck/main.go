// Command tracecheck validates a Chrome trace-event JSON file as written by
// the -trace flag of cmd/sunstone and cmd/experiments: the document must
// parse, hold a non-empty traceEvents array of complete ("X") and metadata
// ("M") events with sane timestamps, and every name passed as an argument
// must match at least one span (prefix match, so `tracecheck f.json optimize
// level` checks the root span and the per-level passes exist). `make
// trace-smoke` runs it as the telemetry gate in `make check`.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [required-span-prefix ...]")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("traceEvents is empty")
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				fail("event %d (%q): negative timing ts=%v dur=%v", i, ev.Name, ev.Ts, ev.Dur)
			}
		case "M":
		default:
			fail("event %d (%q): unexpected phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Name == "" {
			fail("event %d has no name", i)
		}
	}
	if spans == 0 {
		fail("no complete (ph=X) spans")
	}
	for _, want := range os.Args[2:] {
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" && strings.HasPrefix(ev.Name, want) {
				found = true
				break
			}
		}
		if !found {
			fail("no span named %q*", want)
		}
	}
	fmt.Printf("tracecheck: %s ok (%d events, %d spans)\n", os.Args[1], len(doc.TraceEvents), spans)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

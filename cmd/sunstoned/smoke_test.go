package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sunstone"
)

// TestServerSmoke is the `make server-smoke` gate: build the real sunstoned
// binary, run it on an ephemeral port, submit a job and poll it to
// completion, then SIGTERM the daemon with a second, long-budget job
// mid-search and assert the drained process (a) hands that job a terminal
// status carrying a best-so-far mapping over its SSE stream, and (b) exits
// cleanly.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sunstoned")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-drain-grace", "100ms",
		"-stall-timeout", "-1s", // this test owns all timing
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "listening on <addr>" once the socket is bound.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var base string
	for base == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before listening")
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never reported its address")
		}
	}
	go func() { // drain remaining log lines so the daemon never blocks on stderr
		for range lines {
		}
	}()

	// Quick job: submit, poll to done, expect a mapping.
	quick := submitJob(t, base, `{"tenant":"smoke","arch":"tiny","timeout_ms":20000,
		"conv":{"K":2,"C":2,"P":3,"Q":3,"R":2,"S":2}}`)
	fin := pollUntilTerminal(t, base, quick.ID, 30*time.Second)
	if fin.State != sunstone.JobDone || len(fin.Mapping) == 0 {
		t.Fatalf("quick job: state %q, mapping %d bytes (error %q)", fin.State, len(fin.Mapping), fin.Error)
	}

	// Slow job: a big conv with a long budget, so it is guaranteed to be
	// mid-search when the daemon is told to drain.
	slow := submitJob(t, base, `{"tenant":"smoke","arch":"conventional","timeout_ms":120000,
		"conv":{"N":16,"K":64,"C":64,"P":28,"Q":28,"R":3,"S":3}}`)
	for st := slow; st.State != sunstone.JobRunning; {
		st = pollStatus(t, base, slow.ID)
		if st.State.Terminal() {
			t.Fatalf("slow job finished before the drain could interrupt it: %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Subscribe to the slow job's SSE stream *before* the signal: the
	// drain keeps active handlers alive until the terminal event is sent.
	sseResp, err := http.Get(base + "/v1/jobs/" + slow.ID + "/events")
	if err != nil {
		t.Fatalf("events stream: %v", err)
	}
	defer sseResp.Body.Close()
	terminal := make(chan sunstone.JobEvent, 1)
	go func() {
		if ev, ok := readTerminalEvent(sseResp.Body); ok {
			terminal <- ev
		}
		close(terminal)
	}()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case ev, ok := <-terminal:
		if !ok {
			t.Fatal("SSE stream ended without a terminal event")
		}
		if ev.Job == nil || ev.Job.State != sunstone.JobDone {
			t.Fatalf("drained job terminal event: %+v", ev.Job)
		}
		if len(ev.Job.Mapping) == 0 {
			t.Fatal("drained job carries no best-so-far mapping")
		}
		if ev.Job.Stopped == "complete" {
			t.Logf("note: slow job completed naturally before the grace cut (stopped=%s)", ev.Job.Stopped)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("no terminal event after SIGTERM")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon did not exit cleanly after drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after drain")
	}
}

func submitJob(t *testing.T, base, body string) sunstone.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st sunstone.JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("submit response: %v (%s)", err, b)
	}
	return st
}

func pollStatus(t *testing.T, base, id string) sunstone.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sunstone.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("poll %s: %v", id, err)
	}
	return st
}

func pollUntilTerminal(t *testing.T, base, id string, budget time.Duration) sunstone.JobStatus {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if st := pollStatus(t, base, id); st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return sunstone.JobStatus{}
}

// readTerminalEvent scans an SSE stream until the "done" event and returns
// its decoded payload.
func readTerminalEvent(r io.Reader) (sunstone.JobEvent, bool) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event == "done":
			var ev sunstone.JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				fmt.Println("bad terminal event:", err)
				return ev, false
			}
			return ev, true
		}
	}
	return sunstone.JobEvent{}, false
}

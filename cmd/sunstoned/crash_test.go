package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sunstone"
)

// startDaemon launches a built sunstoned binary with extra flags and waits
// for its "listening on" line, returning the process and the API base URL.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var base string
	for base == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before listening")
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never reported its address")
		}
	}
	go func() { // keep draining so the daemon never blocks on stderr
		for range lines {
		}
	}()
	return cmd, base
}

// statzCounter polls GET /statz and returns one srv.* counter.
func statzCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Counters map[string]uint64 `json:"counters"`
		Journal  *struct {
			Records uint64 `json:"records"`
		} `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Counters[name]
}

// TestCrashRecoverySmoke is the `make crash-smoke` gate: the durability
// story end to end against the real binary. Submit a long job, SIGKILL the
// daemon mid-search (after at least one best-so-far checkpoint reached the
// journal), restart it on the same -data-dir, and assert the job is
// re-admitted, finishes done with an audit-passing mapping no worse than
// its checkpoint, and that the restarted daemon then drains cleanly.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sunstoned")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "wal")
	durableFlags := []string{
		"-data-dir", dataDir,
		"-fsync", "always",
		"-checkpoint-every", "1ms",
		"-stall-timeout", "-1s",
		"-drain-grace", "100ms",
	}

	cmd, base := startDaemon(t, bin, durableFlags...)

	// A big conv with a generous budget: guaranteed still searching when
	// the process is killed.
	slow := submitJob(t, base, `{"tenant":"crash","arch":"conventional","timeout_ms":120000,
		"conv":{"N":16,"K":64,"C":64,"P":28,"Q":28,"R":3,"S":3}}`)

	// Wait for a checkpoint to reach the journal, then kill without grace.
	deadline := time.Now().Add(30 * time.Second)
	for statzCounter(t, base, "srv.journal.checkpoints") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint journaled within 30s")
		}
		if st := pollStatus(t, base, slow.ID); st.State.Terminal() {
			t.Fatalf("slow job finished before the crash: %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no result record
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same journal directory.
	cmd2, base2 := startDaemon(t, bin, durableFlags...)

	if n := statzCounter(t, base2, "srv.jobs.recovered"); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	fin := pollUntilTerminal(t, base2, slow.ID, 150*time.Second)
	if fin.State != sunstone.JobDone {
		t.Fatalf("recovered job: state %q (error %q, cause %q)", fin.State, fin.Error, fin.Cause)
	}
	if !fin.Recovered {
		t.Fatal("recovered job not marked recovered")
	}
	if len(fin.Mapping) == 0 {
		t.Fatal("recovered job carries no mapping")
	}
	if fin.CheckpointEDP <= 0 {
		t.Fatal("recovered job lost its checkpoint")
	}
	if fin.EDP > fin.CheckpointEDP {
		t.Fatalf("resumed search finished worse than its checkpoint: EDP %g > %g",
			fin.EDP, fin.CheckpointEDP)
	}

	// Exactly the one job exists — nothing lost, nothing duplicated.
	resp, err := http.Get(base2 + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []sunstone.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != slow.ID {
		t.Fatalf("job list after recovery: %+v", list.Jobs)
	}

	// Third life: the finished job comes back as a terminal record with
	// the same figures, without re-running.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd2, "second daemon")
	cmd3, base3 := startDaemon(t, bin, durableFlags...)
	again := pollStatus(t, base3, slow.ID)
	if again.State != sunstone.JobDone || again.EDP != fin.EDP {
		t.Fatalf("terminal record drifted across restart: %q/%g vs done/%g",
			again.State, again.EDP, fin.EDP)
	}
	if err := cmd3.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd3, "third daemon")
}

func waitExit(t *testing.T, cmd *exec.Cmd, who string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s did not exit cleanly: %v", who, err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%s never exited", who)
	}
}

// Command sunstoned is the sunstone scheduler service: a long-running HTTP
// daemon that accepts mapping jobs, runs them on a bounded worker pool over
// one shared compile-cache Engine, and protects itself from overload.
//
//	sunstoned -addr :7070
//	sunstoned -addr :7070 -tenant-rate 2 -tenant-burst 8 -queue-depth 64
//	sunstoned -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0   # ephemeral ports
//	sunstoned -addr :7070 -data-dir /var/lib/sunstoned    # durable jobs
//
// With -data-dir set, every accepted submission is written to an
// append-only journal before the 202 is returned, running searches
// checkpoint their best-so-far mapping, and a restart (even after SIGKILL)
// replays the journal: finished jobs serve their recorded results,
// unfinished jobs are re-admitted and resume from their checkpoints.
//
// Job API (see DESIGN.md "Scheduler service & overload protection"):
//
//	POST   /v1/jobs             submit (202 + job; 429 shed; 503 draining)
//	GET    /v1/jobs             list jobs (?tenant= filters)
//	GET    /v1/jobs/{id}        poll status
//	GET    /v1/jobs/{id}/events SSE progress stream, terminal event last
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz /readyz /statz
//
// On SIGTERM/SIGINT the daemon drains: admissions stop (submissions get
// 503, /readyz flips), in-flight and queued jobs get -drain-grace to finish
// before their searches are canceled down to best-so-far mappings, final
// statuses are served, then listeners close and the process exits 0. A
// second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sunstone"
	"sunstone/internal/faults"
)

var (
	addr         = flag.String("addr", ":7070", "job API listen address (host:port; port 0 picks one)")
	debugAddr    = flag.String("debug-addr", "", "private diagnostics listen address for expvar + pprof (default off; never expose publicly)")
	workers      = flag.Int("workers", 0, "concurrent searches (0 = GOMAXPROCS capped at 8)")
	queueDepth   = flag.Int("queue-depth", 0, "admitted-but-not-running bound; a full queue sheds with 429 (0 = 64)")
	tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant sustained admission rate, jobs/second (0 = no per-tenant shaping)")
	tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant admission burst size (0 = 8)")
	defTimeout   = flag.Duration("default-timeout", 0, "end-to-end deadline for jobs that set no timeout_ms (0 = 30s)")
	maxTimeout   = flag.Duration("max-timeout", 0, "clamp on client-requested deadlines (0 = 5m)")
	stallTimeout = flag.Duration("stall-timeout", 0, "watchdog budget: cancel a search silent this long (0 = 30s, negative disables)")
	drainGrace   = flag.Duration("drain-grace", 0, "how long draining jobs may keep searching before best-so-far cancellation (0 = 5s)")
	drainBudget  = flag.Duration("drain-timeout", 30*time.Second, "hard bound on the whole drain at shutdown")
	engineCache  = flag.Int("engine-cache", 0, "compile-cache capacity in problem shapes (0 = default 256)")
	faultSpec    = flag.String("fault-spec", "", "arm deterministic fault injection for chaos testing, e.g. 'evaluate:panic:0.3,seed=42'")
	dataDir      = flag.String("data-dir", "", "write-ahead journal directory; enables durable jobs + crash recovery (default off: in-memory only)")
	fsyncPolicy  = flag.String("fsync", "", "journal fsync policy: always | interval | never (default interval; submits and results always sync)")
	fsyncEvery   = flag.Duration("fsync-every", 0, "background sync period under -fsync interval (0 = 100ms)")
	segmentBytes = flag.Int64("segment-bytes", 0, "journal segment rotation threshold (0 = 4MiB)")
	ckptEvery    = flag.Duration("checkpoint-every", 0, "min interval between best-so-far checkpoints per job (0 = 1s)")
)

func main() {
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("sunstoned: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if *faultSpec != "" {
		inj, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		faults.Activate(inj)
		log.Printf("fault injection armed (%s)", *faultSpec)
	}

	var jr *sunstone.Journal
	if *dataDir != "" {
		var err error
		jr, err = sunstone.OpenJournal(sunstone.JournalOptions{
			Dir:          *dataDir,
			SegmentBytes: *segmentBytes,
			Fsync:        *fsyncPolicy,
			FsyncEvery:   *fsyncEvery,
		})
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		st := jr.Stats()
		log.Printf("journal open at %s (%d records replayed, %d truncated, %d quarantined)",
			*dataDir, st.Replayed, st.CorruptTruncated, st.CorruptQuarantined)
	}

	eng := sunstone.NewEngineSize(*engineCache)
	srv := eng.NewServer(sunstone.ServerConfig{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		StallTimeout:    *stallTimeout,
		DrainGrace:      *drainGrace,
		Journal:         jr,
		CheckpointEvery: *ckptEvery,
	})
	if jr != nil {
		if n := srv.Stats().RecoveredJobs; n > 0 {
			log.Printf("recovered %d journaled jobs (unfinished ones re-admitted with warm starts)", n)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is load-bearing: harnesses that start
	// sunstoned on port 0 (e.g. make server-smoke) parse it.
	log.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 2)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("debug listening on %s (expvar, pprof)", dln.Addr())
		debugSrv = &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { serveErr <- debugSrv.Serve(dln) }()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("caught %s, draining (grace for in-flight jobs; second signal forces exit)", s)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}
	go func() {
		s := <-sig
		log.Printf("caught %s again, exiting immediately", s)
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainBudget)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v (in-flight searches were cut to best-so-far)", err)
	}
	// Jobs are terminal now; give pollers and SSE readers a moment to
	// collect final statuses, then close the listeners.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shCtx)
	}
	st := srv.Stats()
	log.Printf("drained: %d done, %d failed, %d canceled (engine: %d compiles, %d cache hits)",
		st.Counters["srv.jobs.done"], st.Counters["srv.jobs.failed"],
		st.Counters["srv.jobs.canceled"], st.Engine.Compiles, st.Engine.Hits)
	if jr != nil {
		// Every job is terminal and journaled by now; sync and seal.
		if err := jr.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	return nil
}

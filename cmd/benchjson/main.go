// Command benchjson converts Go benchmark output (benchfmt text, as written
// by `go test -bench`) into a JSON trajectory record. `make bench` uses it
// to produce BENCH_PR2.json from a committed before file and a fresh after
// run, so performance PRs carry a machine-readable before/after artifact and
// later sessions can extend the trajectory without re-running old binaries.
//
// Repeated runs of the same benchmark (-count N) are averaged; the sample
// count is recorded. Only the standard line shape is parsed:
//
//	BenchmarkName  <iters>  <value> <unit>  [<value> <unit>]...
//
// Config lines ("key: value") before the first benchmark line are kept as
// environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Run is one parsed benchmark file.
type Run struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one benchmark's metrics, averaged over its samples.
type Benchmark struct {
	Name    string             `json:"name"`
	Samples int                `json:"samples"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	before := flag.String("before", "", "benchfmt file from before the change")
	after := flag.String("after", "", "benchfmt file from after the change")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()
	if *after == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -after is required")
		os.Exit(2)
	}
	doc := map[string]any{}
	if *before != "" {
		r, err := parseFile(*before)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		doc["before"] = r
	}
	r, err := parseFile(*after)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc["after"] = r
	if b, ok := doc["before"].(*Run); ok {
		doc["speedup"] = speedups(b, r)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// speedups reports before/after wall-clock ratios for benchmarks present in
// both runs (>1 means the change made it faster).
func speedups(before, after *Run) map[string]float64 {
	b := map[string]float64{}
	for _, bm := range before.Benchmarks {
		if v, ok := bm.Metrics["ns/op"]; ok && v > 0 {
			b[bm.Name] = v
		}
	}
	out := map[string]float64{}
	for _, bm := range after.Benchmarks {
		if v, ok := bm.Metrics["ns/op"]; ok && v > 0 && b[bm.Name] > 0 {
			out[bm.Name] = round3(b[bm.Name] / v)
		}
	}
	return out
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

func parseFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run := &Run{Env: map[string]string{}}
	type acc struct {
		samples int
		sums    map[string]float64
	}
	accs := map[string]*acc{}
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t") {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			if k, v, ok := strings.Cut(line, ": "); ok {
				run.Env[k] = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		a := accs[name]
		if a == nil {
			a = &acc{sums: map[string]float64{}}
			accs[name] = a
			names = append(names, name)
		}
		a.samples++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			a.sums[fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		a := accs[name]
		bm := Benchmark{Name: name, Samples: a.samples, Metrics: map[string]float64{}}
		for unit, sum := range a.sums {
			bm.Metrics[unit] = sum / float64(a.samples)
		}
		run.Benchmarks = append(run.Benchmarks, bm)
	}
	return run, nil
}

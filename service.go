package sunstone

import (
	"sunstone/internal/journal"
	"sunstone/internal/server"
)

// Scheduler service: re-exports of the overload-protected HTTP job service
// (see internal/server and DESIGN.md "Scheduler service & overload
// protection"). The service front-ends one shared Engine with per-tenant
// admission control, bounded queueing with load shedding, end-to-end
// deadline propagation, a per-job stall watchdog, and graceful drain —
// every job accepted before a drain still ends with a valid mapping.

type (
	// Server is the scheduler service: an http.Handler exposing job
	// submission, status polling, SSE progress streaming, cancellation,
	// and health/readiness/stats endpoints. Create with NewServer or
	// (*Engine).NewServer; call Drain (or Close) exactly once on the way
	// out.
	Server = server.Server
	// ServerConfig parameterizes NewServer; the zero value of every field
	// selects a production-sane default. Leave the Engine field nil and
	// use (*Engine).NewServer to share a root Engine's compile cache.
	ServerConfig = server.Config
	// ServerStats is the /statz document: engine-cache stats, the srv.*
	// service counters, cumulative search-flow totals, and queue gauges.
	ServerStats = server.Stats
	// JobState is a job's lifecycle position (queued, running, done,
	// failed, canceled).
	JobState = server.JobState
	// JobStatus is the wire view of a job returned by the status, list,
	// and submit endpoints and by the terminal SSE event.
	JobStatus = server.JobStatus
	// SubmitRequest is the POST /v1/jobs body: one workload form
	// (serde JSON, textual description, or inline conv geometry), an
	// architecture preset or document, optimizer knobs, and the
	// end-to-end deadline.
	SubmitRequest = server.SubmitRequest
	// ConvSpec is SubmitRequest's inline convolution geometry.
	ConvSpec = server.ConvSpec
	// SubmitOptions is SubmitRequest's optimizer-knob subset.
	SubmitOptions = server.SubmitOptions
	// JobEvent is one SSE frame of GET /v1/jobs/{id}/events.
	JobEvent = server.Event
	// Journal is the durable write-ahead job log behind sunstoned's
	// -data-dir mode: crash-safe record of submissions, best-so-far search
	// checkpoints, and terminal results. Open with OpenJournal and hand it
	// to ServerConfig.Journal; the server replays it on construction and
	// re-admits unfinished jobs.
	Journal = journal.Journal
	// JournalOptions parameterizes OpenJournal (directory, segment size,
	// fsync policy).
	JournalOptions = journal.Options
	// JournalStats is the journal health block surfaced under /statz.
	JournalStats = journal.Stats
)

// Journal fsync policies for JournalOptions.Fsync.
const (
	FsyncAlways   = journal.FsyncAlways
	FsyncInterval = journal.FsyncInterval
	FsyncNever    = journal.FsyncNever
)

// OpenJournal opens (or creates) the write-ahead journal directory in
// o.Dir, replaying any existing segments: torn or corrupt tails are
// truncated, mid-file corruption is quarantined and counted, and the
// surviving records are held for the next NewServer to recover from.
func OpenJournal(o JournalOptions) (*Journal, error) { return journal.Open(o) }

// Job lifecycle states.
const (
	JobQueued   = server.JobQueued
	JobRunning  = server.JobRunning
	JobDone     = server.JobDone
	JobFailed   = server.JobFailed
	JobCanceled = server.JobCanceled
)

// NewServer builds a scheduler service from cfg (zero fields defaulted),
// backed by a fresh Engine unless cfg.Engine is set. The worker pool starts
// immediately.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewServer builds a scheduler service sharing this Engine's compilation
// cache: identical problems submitted by any tenant compile once for the
// whole service (and for any direct Optimize calls on the same Engine).
func (e *Engine) NewServer(cfg ServerConfig) *Server {
	cfg.Engine = e.core
	return server.New(cfg)
}

package sunstone_test

import (
	"sync"
	"testing"

	"sunstone"
)

// TestEngineSharedAcrossGoroutines hammers one Engine from many goroutines
// with a mix of repeating workload shapes — the serving pattern the Engine
// exists for. Run under -race (make race includes this package) it checks
// the whole compiled-artifact sharing story: the sharded cache, the
// singleflight compile gate, the shared cost-session memo, and the memoized
// level expansions. Each call's Result must stand alone: per-shape
// deterministic EDP, and flow counters that satisfy the partition identity
// independently of the concurrent calls sharing the compiled problem.
func TestEngineSharedAcrossGoroutines(t *testing.T) {
	eng := sunstone.NewEngine()
	a := sunstone.Tiny(128)
	shapes := []*sunstone.Workload{
		sunstone.Conv1D("s0", 4, 4, 8, 3),
		sunstone.Conv1D("s1", 8, 4, 14, 3),
		sunstone.Conv1D("s2", 4, 8, 7, 3),
	}

	const goroutines = 8
	const callsPerGoroutine = 6

	var mu sync.Mutex
	bestEDP := make(map[string]float64)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for c := 0; c < callsPerGoroutine; c++ {
				w := shapes[(g+c)%len(shapes)]
				res, err := eng.Optimize(w, a, sunstone.Options{})
				if err != nil {
					t.Errorf("goroutine %d call %d (%s): %v", g, c, w.Name, err)
					return
				}
				if !res.Report.Valid {
					t.Errorf("goroutine %d call %d (%s): invalid: %v", g, c, w.Name, res.Report.Invalid)
					return
				}
				// Per-call stats must partition on their own even though the
				// compiled problem (memo, expansions) is shared.
				st := res.Stats
				if got := st.Pruned() + st.Deduped + st.Evaluated + st.Skipped; got != st.Generated {
					t.Errorf("goroutine %d call %d (%s): flow identity broken: %d != generated %d",
						g, c, w.Name, got, st.Generated)
					return
				}
				mu.Lock()
				if prev, ok := bestEDP[w.Name]; ok && prev != res.Report.EDP {
					t.Errorf("%s: nondeterministic EDP under sharing: %g then %g", w.Name, prev, res.Report.EDP)
				}
				bestEDP[w.Name] = res.Report.EDP
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	s := eng.Stats()
	if s.Compiles != uint64(len(shapes)) {
		t.Errorf("Compiles = %d, want %d (one per distinct shape)", s.Compiles, len(shapes))
	}
	if want := uint64(goroutines*callsPerGoroutine - len(shapes)); s.Hits != want {
		t.Errorf("Hits = %d, want %d", s.Hits, want)
	}
}

// TestEngineScheduleNetwork routes a small network through one Engine and
// checks that repeated layer shapes hit the compilation cache rather than
// recompiling per layer.
func TestEngineScheduleNetwork(t *testing.T) {
	eng := sunstone.NewEngine()
	shapes := sunstone.ResNet18Layers[:2]
	sched, err := eng.ScheduleNetwork("head", shapes, 1, []int{1, 2},
		sunstone.Conventional(), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Layers) != 2 {
		t.Fatalf("layers = %d", len(sched.Layers))
	}
	for _, l := range sched.Layers {
		if !l.Result.Report.Valid {
			t.Fatalf("%s invalid: %v", l.Layer, l.Result.Report.Invalid)
		}
	}
	s := eng.Stats()
	if s.Compiles == 0 || s.Compiles > 2 {
		t.Errorf("Compiles = %d, want 1..2 (distinct layer shapes only)", s.Compiles)
	}

	// Rescheduling the same network on the same Engine is fully warm.
	if _, err := eng.ScheduleNetwork("head", shapes, 1, []int{1, 2},
		sunstone.Conventional(), sunstone.Options{}); err != nil {
		t.Fatal(err)
	}
	if s2 := eng.Stats(); s2.Compiles != s.Compiles {
		t.Errorf("warm reschedule recompiled: %d -> %d", s.Compiles, s2.Compiles)
	}
}

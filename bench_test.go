// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus micro-benchmarks of Sunstone's stages.
//
// The figure benchmarks run the experiment drivers in quick mode (subset of
// layers, scaled search budgets — see internal/experiments) and report the
// headline quantities as custom metrics:
//
//	go test -bench=. -benchmem ./...
//
// For the full-budget regeneration recorded in EXPERIMENTS.md, run
// `go run ./cmd/experiments -exp all`.
package sunstone_test

import (
	"context"
	"fmt"
	"testing"

	"sunstone"
	"sunstone/internal/experiments"
)

func quickCfg() experiments.Config { return experiments.Config{Quick: true, Seed: 1} }

// BenchmarkTable1SpaceSize regenerates the per-tool mapping-space size
// comparison (Table I).
func BenchmarkTable1SpaceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Table1()
		if len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Reuse regenerates the reuse-inference table (Table III).
func BenchmarkTable3Reuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6NonDNN regenerates Figs. 6a/6b: MTTKRP/TTMc/SDDMM EDP and
// time-to-solution, Sunstone vs Timeloop, conventional accelerator.
func BenchmarkFig6NonDNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig6(quickCfg())
		sums := experiments.Summarize(runs)
		for _, s := range sums {
			if s.Tool == "TL-slow" {
				b.ReportMetric(s.GeomeanEDPRel, "TLslow-EDP-vs-sun")
				b.ReportMetric(s.TotalSeconds, "TLslow-sec")
			}
			if s.Tool == "Sunstone" {
				b.ReportMetric(s.TotalSeconds, "sun-sec")
			}
		}
	}
}

// BenchmarkFig7InceptionWU regenerates Figs. 7a/7b: Inception-v3 weight
// update (batch 16), all five baselines, invalid mappings flagged.
func BenchmarkFig7InceptionWU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig7(quickCfg())
		sums := experiments.Summarize(runs)
		for _, s := range sums {
			switch s.Tool {
			case "dMaze-fast":
				b.ReportMetric(float64(s.Invalid), "dMaze-invalid")
			case "INTER":
				b.ReportMetric(s.GeomeanEDPRel, "INTER-EDP-vs-sun")
			}
		}
	}
}

// BenchmarkFig8ResNetSimba regenerates Figs. 8a/8b: ResNet-18 (batch 16) on
// the Simba-like machine, Sunstone vs Timeloop vs CoSA.
func BenchmarkFig8ResNetSimba(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig8(quickCfg())
		sums := experiments.Summarize(runs)
		for _, s := range sums {
			switch s.Tool {
			case "CoSA":
				b.ReportMetric(float64(s.Invalid), "CoSA-invalid")
			case "TL-fast":
				b.ReportMetric(s.GeomeanEDPRel, "TL-EDP-vs-sun")
			}
		}
	}
}

// BenchmarkTable6OptOrder regenerates the optimization-order study (Table
// VI): intra-level orders and bottom-up vs top-down space sizes.
func BenchmarkTable6OptOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6(quickCfg())
		if len(rows) != 4 {
			b.Fatal("want 4 rows")
		}
		b.ReportMetric(float64(rows[2].SpaceSize), "bottomup-space")
		b.ReportMetric(float64(rows[3].SpaceSize), "topdown-space")
	}
}

// BenchmarkFig9Overheads regenerates the tiling/unrolling overhead analysis
// (Figs. 9a/9b) on the DianNao-like machine.
func BenchmarkFig9Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalNaivePJ/r.TotalOptimizedPJ, "naive/opt-energy")
		b.ReportMetric(100*r.InstrFraction, "instr-%")
		b.ReportMetric(100*r.ReorderFraction, "reorder-%")
	}
}

// --- Component micro-benchmarks ---

// BenchmarkOptimizeConvConventional measures one full Sunstone search on a
// representative ResNet-18 layer, conventional accelerator, across worker
// pool sizes. The threads=1 sub-benchmark is the serial baseline; the
// threads=N ratios are the intra-search parallel speedup (results are
// bit-identical at every thread count — see TestParallelParity).
func BenchmarkOptimizeConvConventional(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sunstone.Optimize(w, a, sunstone.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeConvConventionalTelemetry is the same search with the
// full telemetry surface on — a trace in the context and a progress sink —
// so the ns/op delta against BenchmarkOptimizeConvConventional is the
// observability overhead (budget: < 10%, see DESIGN.md).
func BenchmarkOptimizeConvConventionalTelemetry(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	var events int
	opt := sunstone.Options{Progress: func(sunstone.ProgressEvent) { events++ }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sunstone.WithTrace(context.Background(), sunstone.NewTrace())
		if _, err := sunstone.OptimizeContext(ctx, w, a, opt); err != nil {
			b.Fatal(err)
		}
	}
	if events == 0 {
		b.Fatal("progress sink never fired")
	}
}

// BenchmarkOptimizeConvSimba measures a search on the deeper Simba
// hierarchy (two spatial levels, bypass) — the scalability case. The
// cache-hit-rate metric tracks how much of the search's evaluation load the
// memoization layer absorbs.
func BenchmarkOptimizeConvSimba(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Simba()
	b.ResetTimer()
	var hits, misses uint64
	for i := 0; i < b.N; i++ {
		res, err := sunstone.Optimize(w, a, sunstone.Options{})
		if err != nil {
			b.Fatal(err)
		}
		hits += res.Stats.EvalCacheHits
		misses += res.Stats.EvalCacheMisses
	}
	if total := hits + misses; total > 0 {
		b.ReportMetric(100*float64(hits)/float64(total), "cache-hit-%")
	}
}

// BenchmarkAnalyticalLayer measures the analytical seeding + bound layer on
// the headline Simba conv search: the on/off ns/op ratio is the wall-clock
// win, and the evaluated/op metric pins the candidate-evaluation reduction
// (the PR 8 acceptance bar: ≥30% fewer with the layer on, at equal-or-better
// EDP — the EDP metric is reported on both arms for the parity check).
func BenchmarkAnalyticalLayer(b *testing.B) {
	w := sunstone.Conv2D("conv", 4, 64, 64, 28, 28, 3, 3, 1, 1)
	a := sunstone.Simba()
	for _, arm := range []struct {
		name string
		an   sunstone.AnalyticalOptions
	}{
		{"on", sunstone.AnalyticalOptions{Seed: true, Bounds: true}},
		{"off", sunstone.AnalyticalOptions{}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var evaluated uint64
			var edp float64
			for i := 0; i < b.N; i++ {
				an := arm.an
				res, err := sunstone.Optimize(w, a, sunstone.Options{Analytical: &an})
				if err != nil {
					b.Fatal(err)
				}
				evaluated += res.Stats.Evaluated
				edp = res.Report.EDP
			}
			b.ReportMetric(float64(evaluated)/float64(b.N), "evaluated/op")
			b.ReportMetric(edp, "EDP")
		})
	}
}

// BenchmarkNetworkFused schedules the transformer GEMM chain whole-network
// in both modes — per-layer (max group 1) and fusion-aware — and reports
// the network EDP each lands on: the fused/unfused gap is the PR 9
// acceptance bar (fused strictly lower on this preset), committed in
// BENCH_PR9.json.
func BenchmarkNetworkFused(b *testing.B) {
	net := sunstone.TransformerChain(64, 64, 256)
	a := sunstone.Conventional()
	opt := sunstone.NetworkOptions{Options: sunstone.Options{
		BeamWidth: 4, TilesPerStep: 8, UnrollsPerStep: 1,
	}}
	for _, arm := range []struct {
		name     string
		maxGroup int
	}{
		{"unfused", 1},
		{"fused", 0},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var edp float64
			for i := 0; i < b.N; i++ {
				sched, err := sunstone.ScheduleNetworkFused(context.Background(), net, a, opt,
					sunstone.FusionOptions{MaxGroup: arm.maxGroup})
				if err != nil {
					b.Fatal(err)
				}
				edp = sched.EDP
			}
			b.ReportMetric(edp, "EDP")
		})
	}
}

// BenchmarkOptimizeMTTKRP measures a non-DNN kernel search.
func BenchmarkOptimizeMTTKRP(b *testing.B) {
	w := sunstone.MTTKRP("mttkrp_nell2", 12092, 9184, 28818, 32)
	a := sunstone.Conventional()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sunstone.Optimize(w, a, sunstone.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateMapping measures one cost-model evaluation (the inner
// loop of every mapper).
func BenchmarkEvaluateMapping(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := res.Mapping
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sunstone.Evaluate(m)
		if !rep.Valid {
			b.Fatal("invalid")
		}
	}
}

// BenchmarkEvaluateEDP measures one scalar fast-path evaluation on the
// memoized path (same mapping every iteration — a cache hit after the first
// call). Steady state must be allocation-free: 0 allocs/op.
func BenchmarkEvaluateEDP(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := res.Mapping
	ev := sunstone.NewCostSession(w, a).NewEvaluator()
	ev.EvaluateEDP(m) // warm: the first call pays the cache insert
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, valid := ev.EvaluateEDP(m); !valid {
			b.Fatal("invalid")
		}
	}
}

// BenchmarkEvaluateEDPUncached measures the raw scalar compute path with the
// memoization layer bypassed — the true cost of one model evaluation. Also
// 0 allocs/op.
func BenchmarkEvaluateEDPUncached(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := res.Mapping
	ev := sunstone.NewCostSession(w, a).NewEvaluator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, valid := ev.EvaluateEDPUncached(m); !valid {
			b.Fatal("invalid")
		}
	}
}

// BenchmarkEngineReuse quantifies what a long-lived Engine buys: the cold
// case pays the full per-problem compilation (ordering trie, ladder tables,
// fit skeleton, cost-session tables) and searches with an empty evaluation
// memo on every iteration; the warm case reuses one Engine's compiled
// artifacts and warmed memo across iterations. The warm/cold ns/op ratio in
// BENCH_PR4.json is the Engine-reuse speedup.
func BenchmarkEngineReuse(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sunstone.NewEngine().Optimize(w, a, sunstone.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := sunstone.NewEngine()
		if _, err := eng.Optimize(w, a, sunstone.Options{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(w, a, sunstone.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDianNaoCompileSimulate measures the Section V-D pipeline on one
// layer.
func BenchmarkDianNaoCompileSimulate(b *testing.B) {
	w := sunstone.ResNet18Layers[1].Inference(1)
	a := sunstone.DianNao()
	res, err := sunstone.Optimize(w, a, sunstone.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sunstone.RunOnDianNao(res.Mapping); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks: quantify the design choices DESIGN.md calls out ---

// ablate runs one optimizer configuration on a representative layer and
// reports the resulting EDP and examined-space size as metrics.
func ablate(b *testing.B, opt sunstone.Options) {
	w := sunstone.ResNet18Layers[1].Inference(16)
	a := sunstone.Conventional()
	for i := 0; i < b.N; i++ {
		res, err := sunstone.Optimize(w, a, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.EDP, "EDP")
		b.ReportMetric(float64(res.SpaceSize), "space")
	}
}

// BenchmarkAblationDefault is the reference configuration.
func BenchmarkAblationDefault(b *testing.B) { ablate(b, sunstone.Options{}) }

// BenchmarkAblationNoPolish disables the greedy local refinement.
func BenchmarkAblationNoPolish(b *testing.B) { ablate(b, sunstone.Options{NoPolish: true}) }

// BenchmarkAblationBeam4 narrows the inter-level beam to 4.
func BenchmarkAblationBeam4(b *testing.B) { ablate(b, sunstone.Options{BeamWidth: 4}) }

// BenchmarkAblationBeam64 widens the beam to 64 (diminishing returns
// expected — the pruning principles, not the beam, carry the search).
func BenchmarkAblationBeam64(b *testing.B) { ablate(b, sunstone.Options{BeamWidth: 64}) }

// BenchmarkAblationLowUtilization drops the high-throughput unrolling
// threshold, admitting underutilized spatial assignments.
func BenchmarkAblationLowUtilization(b *testing.B) {
	ablate(b, sunstone.Options{MinUtilization: 0.05})
}

// BenchmarkDataflowSpread regenerates the intro's motivation study: the EDP
// spread between fixed dataflows and the searched mapping.
func BenchmarkDataflowSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DataflowSpread(quickCfg())
		var base, worst float64 = 0, 1
		for _, r := range rows {
			if r.Dataflow == "searched (Sunstone)" {
				base = r.EDP
			}
		}
		for _, r := range rows {
			if r.Valid && r.EDP/base > worst {
				worst = r.EDP / base
			}
		}
		b.ReportMetric(worst, "worst-fixed-vs-searched")
	}
}

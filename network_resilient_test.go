package sunstone_test

import (
	"context"
	"errors"
	"testing"

	"sunstone"
	"sunstone/internal/faults"
)

// TestScheduleNetworkClassifiesInjectedFailures: without resilience, a 100%
// compile fault fails every layer, and each LayerError classifies as
// CauseInjected with the *InjectedFault reachable through errors.As.
func TestScheduleNetworkClassifiesInjectedFailures(t *testing.T) {
	inj, err := faults.NewInjector(7,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Error, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	defer restore()

	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{ContinueOnError: true})
	if err == nil || sched.Failed != len(sched.Layers) {
		t.Fatalf("every layer must fail on a dead compiler: err=%v failed=%d", err, sched.Failed)
	}
	for _, l := range sched.Layers {
		if got := sunstone.CauseOf(l.Err); got != sunstone.CauseInjected {
			t.Errorf("layer %s: cause %q, want %q (err: %v)", l.Layer, got, sunstone.CauseInjected, l.Err)
		}
		var ie *sunstone.InjectedFault
		if !errors.As(l.Err, &ie) || ie.Site != faults.SiteCompile {
			t.Errorf("layer %s: injected fault not reachable via errors.As: %v", l.Layer, l.Err)
		}
	}
}

// TestScheduleNetworkClassifiesPanicFailures: a poisoned cost model (not an
// injected chaos fault) classifies as CausePanic.
func TestScheduleNetworkClassifiesPanicFailures(t *testing.T) {
	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{Options: poisonedOptions("b"), ContinueOnError: true})
	if err == nil {
		t.Fatal("poisoned layer must surface as an error")
	}
	for _, l := range sched.Layers {
		if l.Layer != "b" {
			continue
		}
		if got := sunstone.CauseOf(l.Err); got != sunstone.CausePanic {
			t.Errorf("poisoned layer: cause %q, want %q (err: %v)", got, sunstone.CausePanic, l.Err)
		}
	}
}

// TestScheduleNetworkResilientSurvivesInjectedFailures is the degraded-mode
// counterpart: the same 100% compile fault, but with a Resilience policy the
// schedule succeeds — every layer degrades to the first fallback (which
// builds its cost session without the engine's compile path) and records its
// failed primary attempts.
func TestScheduleNetworkResilientSurvivesInjectedFailures(t *testing.T) {
	inj, err := faults.NewInjector(7,
		faults.Rule{Site: faults.SiteCompile, Kind: faults.Error, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(inj)
	defer restore()

	sched, err := sunstone.ScheduleNetworkContext(context.Background(), "net", smallNet(), 1, nil,
		sunstone.Tiny(256), sunstone.NetworkOptions{Resilience: &sunstone.RetryPolicy{}})
	if err != nil {
		t.Fatalf("resilient schedule must survive compile faults: %v", err)
	}
	if sched.Failed != 0 {
		t.Fatalf("Failed = %d, want 0", sched.Failed)
	}
	for _, l := range sched.Layers {
		res := l.Result
		if res.FallbackUsed != "timeloop-random-lite" {
			t.Errorf("layer %s: FallbackUsed = %q, want timeloop-random-lite", l.Layer, res.FallbackUsed)
		}
		if res.Mapping == nil || res.Mapping.Validate() != nil || !res.Report.Valid {
			t.Errorf("layer %s: fallback did not deliver an audited valid mapping", l.Layer)
		}
		if len(res.Attempts) < 2 {
			t.Errorf("layer %s: Attempts = %+v, want failed primaries then the fallback", l.Layer, res.Attempts)
		}
	}
	if sched.TotalEnergyPJ <= 0 || sched.EDP <= 0 {
		t.Error("degraded schedule should still report network totals")
	}
}

package sunstone

import (
	"context"

	"sunstone/internal/baselines"
	"sunstone/internal/baselines/registry"
	"sunstone/internal/core"
	"sunstone/internal/faults"
)

// Graceful degradation: re-exports of the resilient optimization path (see
// internal/core/resilient.go and DESIGN.md "Fault tolerance & graceful
// degradation").

type (
	// RetryPolicy configures OptimizeResilient: primary retries with budget
	// backoff, the fallback-mapper chain, and the attempt cap. The zero
	// value selects DefaultRetryPolicy.
	RetryPolicy = core.RetryPolicy
	// Attempt is one recorded try of the resilient path (Result.Attempts).
	Attempt = core.Attempt
	// InjectedFault is the error produced by a deterministic chaos fault
	// (internal/faults); CauseOf classifies errors carrying one as
	// CauseInjected.
	InjectedFault = faults.InjectedError
)

// DefaultRetryPolicy returns the default graceful-degradation policy: two
// primary retries at half budgets each, then the
// timeloop-random-lite -> innermost-fit fallback chain, at most 32 attempts.
func DefaultRetryPolicy() RetryPolicy { return core.DefaultRetryPolicy() }

// OptimizeResilient is Optimize hardened for environments where searches can
// fail: bounded primary retries with budget backoff, then pol's fallback-
// mapper chain (ending, by default, in the guaranteed-feasible innermost-fit
// construction), with every accepted result passing a final mapping audit —
// structural validation, a full cost-model evaluation, and a bit-exact
// fast-path cross-check. Attempts are recorded in Result.Attempts;
// Result.FallbackUsed names the fallback that produced the mapping (""
// means the primary search). The error is non-nil only when every attempt
// failed. It runs on a transient Engine; hold an Engine to reuse compiled
// artifacts across calls.
func OptimizeResilient(ctx context.Context, w *Workload, a *Arch, opt Options, pol RetryPolicy) (Result, error) {
	return NewEngine().OptimizeResilient(ctx, w, a, opt, pol)
}

// OptimizeResilient runs the graceful-degradation search through the
// Engine's compilation cache; see the package-level OptimizeResilient.
func (e *Engine) OptimizeResilient(ctx context.Context, w *Workload, a *Arch, opt Options, pol RetryPolicy) (Result, error) {
	return e.core.OptimizeResilient(ctx, w, a, opt, pol)
}

// Open the whole baseline registry — comparison mappers and the degraded-
// mode fallbacks — as RetryPolicy.Fallbacks candidates. The core package
// only knows its built-in chain (its mapper dependencies must stay acyclic
// with the baseline packages' tests); this root package sees everything.
func init() {
	core.RegisterFallbackResolver(func(name string) (baselines.Mapper, bool) {
		ent, ok := registry.Lookup(name)
		if !ok {
			return nil, false
		}
		return ent.New(), true
	})
}

#!/bin/sh
# guard-stepper.sh — keep the level search unified.
#
# PR 4 merged the former bottomUp/topDown drivers into one direction-agnostic
# level sequencer (internal/core/stepper.go). This guard fails the build if
# direction-specific entry points reappear: no Go file may call a function
# named bottomUp or topDown (the per-direction expansion hooks are named
# expandBottom/expandTop and live behind the sequencer), and nothing may
# reference core.bottomUp/core.topDown from outside the core package.
set -eu
cd "$(dirname "$0")/.."

status=0

# Calls to a bare bottomUp(...)/topDown(...) function anywhere in the tree.
# \b keeps compounds like topDownUnroll( legal; cmd/sunstone's `topDown`
# flag variable never appears with a call paren.
if grep -rnE --include='*.go' '\b(bottomUp|topDown)[[:space:]]*\(' . ; then
	echo "guard-stepper: direction-specific search entry points are gone;" >&2
	echo "route new work through the unified sequencer in internal/core/stepper.go" >&2
	status=1
fi

# Qualified references would only appear if the symbols were resurrected and
# exported by mistake.
if grep -rnE --include='*.go' 'core\.(bottomUp|topDown)\b' . ; then
	echo "guard-stepper: do not reference core.bottomUp/core.topDown" >&2
	status=1
fi

exit $status

package sunstone_test

import (
	"fmt"

	"sunstone"
)

// DefaultOptions spells out the configuration a zero Options value resolves
// to; start from it when you want the defaults with one knob changed.
func ExampleDefaultOptions() {
	opt := sunstone.DefaultOptions()
	opt.BeamWidth = 48 // search twice as wide as the default

	fmt.Println("direction:", opt.Direction)
	fmt.Println("objective:", opt.Objective)
	fmt.Println("beam width:", opt.BeamWidth)
	// A zero Options value is filled from the same defaults before any
	// search runs, so Options{} and DefaultOptions() behave identically.
	fmt.Println("zero-value beam width resolves to:", sunstone.DefaultOptions().BeamWidth)
	// Output:
	// direction: bottom-up
	// objective: EDP
	// beam width: 48
	// zero-value beam width resolves to: 24
}

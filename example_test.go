package sunstone_test

import (
	"fmt"

	"sunstone"
)

// DefaultOptions spells out the configuration a zero Options value resolves
// to; start from it when you want the defaults with one knob changed.
func ExampleDefaultOptions() {
	opt := sunstone.DefaultOptions()
	opt.BeamWidth = 48 // search twice as wide as the default

	fmt.Println("direction:", opt.Direction)
	fmt.Println("objective:", opt.Objective)
	fmt.Println("beam width:", opt.BeamWidth)
	// A zero Options value is filled from the same defaults before any
	// search runs, so Options{} and DefaultOptions() behave identically.
	fmt.Println("zero-value beam width resolves to:", sunstone.DefaultOptions().BeamWidth)
	// Output:
	// direction: bottom-up
	// objective: EDP
	// beam width: 48
	// zero-value beam width resolves to: 24
}

// An Engine caches per-problem compilation artifacts across calls: repeated
// shapes compile once and later searches reuse the warm tables and memoized
// expansions (cold ~90ms vs warm ~9ms for a ResNet-18 conv layer on the
// conventional preset — see BenchmarkEngineReuse). Results are identical to
// the package-level Optimize; only the speed differs.
func ExampleNewEngine() {
	eng := sunstone.NewEngine() // goroutine-safe; share one per process

	w := sunstone.Conv1D("layer", 4, 4, 14, 3)
	a := sunstone.Tiny(64)
	cold, err := eng.Optimize(w, a, sunstone.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Same shape again — served from the compilation cache.
	warm, err := eng.Optimize(w, a, sunstone.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	s := eng.Stats()
	fmt.Println("compiles:", s.Compiles)
	fmt.Println("cache hits:", s.Hits)
	fmt.Println("same result:", cold.Report.EDP == warm.Report.EDP)
	// Output:
	// compiles: 1
	// cache hits: 1
	// same result: true
}

package sunstone_test

import (
	"fmt"
	"testing"

	"sunstone"
)

func TestPublicAPIQuickstart(t *testing.T) {
	w := sunstone.Conv2D("layer", 1, 32, 32, 14, 14, 3, 3, 1, 1)
	res, err := sunstone.Optimize(w, sunstone.Conventional(), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid || res.Report.EDP <= 0 {
		t.Fatalf("bad result: %+v", res.Report)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICustomWorkload(t *testing.T) {
	// Users can describe any Table II-style kernel directly, e.g. the
	// paper's 1D convolution from Section IV.
	w, err := sunstone.NewWorkload("conv1d",
		map[sunstone.Dim]int{"K": 4, "C": 4, "P": 7, "R": 3},
		&sunstone.Tensor{Name: "ifmap", Axes: []sunstone.Axis{sunstone.Win("P", 1, "R", 1), sunstone.A("C")}},
		&sunstone.Tensor{Name: "weight", Axes: []sunstone.Axis{sunstone.A("K"), sunstone.A("C"), sunstone.A("R")}},
		&sunstone.Tensor{Name: "ofmap", Axes: []sunstone.Axis{sunstone.A("K"), sunstone.A("P")}, Output: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sunstone.Optimize(w, sunstone.Tiny(64), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
}

func TestPublicAPIHandMappingEvaluate(t *testing.T) {
	w := sunstone.Conv1D("c", 4, 4, 14, 3)
	m := sunstone.NewMapping(w, sunstone.Tiny(4096))
	m.Levels[0].Temporal = map[sunstone.Dim]int{"P": 7, "K": 2, "C": 2, "R": 3}
	m.Levels[1].Temporal = map[sunstone.Dim]int{"P": 2, "K": 2, "C": 2}
	m.Levels[1].Order = []sunstone.Dim{"C", "K", "P"}
	rep := sunstone.Evaluate(m)
	if !rep.Valid {
		t.Fatalf("invalid: %v", rep.Invalid)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	w := sunstone.Conv2D("layer", 1, 16, 16, 14, 14, 3, 3, 1, 1)
	for _, bl := range []sunstone.BaselineMapper{
		sunstone.DMazeFast(), sunstone.DMazeSlow(), sunstone.Interstellar(),
	} {
		r := bl.Map(w, sunstone.Conventional())
		if r.Mapping == nil && r.InvalidReason == "" {
			t.Errorf("%s: no mapping and no reason", bl.Name())
		}
	}
	r := sunstone.CoSA().Map(w, sunstone.Simba())
	if r.Evaluated > 20 {
		t.Error("CoSA must be one-shot (constant permutation variants only)")
	}
}

func TestLayerTablesExported(t *testing.T) {
	if len(sunstone.ResNet18Layers) == 0 || len(sunstone.InceptionV3Layers) == 0 {
		t.Fatal("layer tables missing")
	}
	w := sunstone.ResNet18Layers[0].Inference(16)
	if w.Dims["N"] != 16 {
		t.Error("batch not applied")
	}
}

func ExampleOptimize() {
	w := sunstone.Conv1D("example", 4, 4, 14, 3)
	res, err := sunstone.Optimize(w, sunstone.Tiny(64), sunstone.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", res.Report.Valid)
	// Output: valid: true
}

func TestFacadeNamesAndObjectives(t *testing.T) {
	if sunstone.TimeloopFast().Name() != "TL-fast" || sunstone.TimeloopSlow().Name() != "TL-slow" {
		t.Error("timeloop facade names")
	}
	if sunstone.DMazeFast().Name() != "dMaze-fast" || sunstone.Interstellar().Name() != "INTER" {
		t.Error("baseline facade names")
	}
	for _, o := range []sunstone.Objective{
		sunstone.MinEDP, sunstone.MinEnergy, sunstone.MinDelay, sunstone.MinED2P,
	} {
		if o.String() == "" {
			t.Error("objective string")
		}
	}
}

func TestFacadeDianNaoPipeline(t *testing.T) {
	w := sunstone.Conv2D("c", 1, 32, 32, 8, 8, 3, 3, 1, 1)
	res, err := sunstone.Optimize(w, sunstone.DianNao(), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sunstone.RunOnDianNao(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if run.Instructions <= 0 || run.MACs != w.MACs() {
		t.Errorf("bad run: %+v", run)
	}
	naive := sunstone.NaiveDianNaoEnergy(w)
	if run.TotalEnergyPJ() >= naive["MAC"]+naive["DRAM"] {
		t.Error("optimized execution should beat naive streaming")
	}
}

func TestFacadeObjectiveOptimize(t *testing.T) {
	w := sunstone.Conv2D("c", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	res, err := sunstone.Optimize(w, sunstone.TinySpatial(512, 1<<16, 4), sunstone.Options{
		Objective: sunstone.MinEnergy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
}

func TestExtraBaselines(t *testing.T) {
	w := sunstone.Conv2D("c", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	a := sunstone.Conventional()
	for _, bl := range []sunstone.BaselineMapper{
		sunstone.Marvel(), sunstone.WeightStationary(),
		sunstone.OutputStationary(), sunstone.InputStationary(),
	} {
		r := bl.Map(w, a)
		if r.Mapping == nil && r.InvalidReason == "" {
			t.Errorf("%s: no mapping and no reason", bl.Name())
		}
	}
}

func TestParseWorkloadFacade(t *testing.T) {
	w, err := sunstone.ParseWorkload(`
		dimensions = {K:4, C:4, P:7, R:3}
		tensor_description = {
			operand1 = [C, (P, R)],
			operand2 = [K, C, R],
			output = [K, P]
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sunstone.Optimize(w, sunstone.Tiny(64), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Fatalf("invalid: %v", res.Report.Invalid)
	}
}

func TestScheduleNetwork(t *testing.T) {
	shapes := sunstone.ResNet18Layers[:3]
	sched, err := sunstone.ScheduleNetwork("resnet18-head", shapes, 1, []int{1, 4, 1},
		sunstone.Conventional(), sunstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Layers) != 3 {
		t.Fatalf("layers = %d", len(sched.Layers))
	}
	// Totals respect repeats: the weighted sum of layer results.
	var wantE float64
	for _, l := range sched.Layers {
		if !l.Result.Report.Valid {
			t.Fatalf("%s invalid", l.Layer)
		}
		wantE += l.Result.Report.EnergyPJ * float64(l.Repeats)
	}
	if sched.TotalEnergyPJ != wantE {
		t.Errorf("total energy %.3e, want %.3e", sched.TotalEnergyPJ, wantE)
	}
	if sched.EDP != sched.TotalEnergyPJ*sched.TotalCycles {
		t.Error("network EDP should be total energy x total cycles")
	}
	if len(sunstone.ResNet18Repeats()) != len(sunstone.ResNet18Layers) {
		t.Error("ResNet18Repeats must align with the layer table")
	}
}

func TestScheduleNetworkRejectsBadRepeats(t *testing.T) {
	_, err := sunstone.ScheduleNetwork("x", sunstone.ResNet18Layers[:2], 1, []int{1},
		sunstone.Conventional(), sunstone.Options{})
	if err == nil {
		t.Error("mismatched repeats must error")
	}
}
